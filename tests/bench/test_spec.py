"""SweepSpec / SamplePoint / SweepResult: expansion, hashing, round-trips."""

import json

import pytest

from repro.bench.spec import (
    PAPER_SIZES,
    SMALL_SIZES,
    PointResult,
    SamplePoint,
    SweepResult,
    SweepSpec,
    algorithm_sweep_spec,
    leader_sweep_spec,
    named_sweep,
    resolve_config,
    SWEEPS,
)
from repro.errors import ReproError
from repro.machine.clusters import cluster_b, get_cluster


def small_spec(**overrides):
    base = dict(
        name="t",
        cluster="b",
        nodes=2,
        ppn=2,
        sizes=(1024, 4096),
        algorithms=("dpml",),
        leader_counts=(1, 2),
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestExpansion:
    def test_point_order_is_size_major(self):
        spec = small_spec(algorithms=("a1", "a2"))
        points = spec.points()
        assert len(points) == spec.n_points == 2 * 2 * 2
        assert [p.nbytes for p in points[:4]] == [1024] * 4
        assert [(p.algorithm, p.leaders) for p in points[:4]] == [
            ("a1", 1), ("a1", 2), ("a2", 1), ("a2", 2),
        ]

    def test_leader_counts_clamped_to_ppn(self):
        spec = small_spec(leader_counts=(1, 2, 4, 8, 16))
        assert spec.effective_leader_counts == (1, 2)
        assert all(p.leaders <= spec.ppn for p in spec.points())

    def test_repeats_get_distinct_seeds(self):
        spec = small_spec(
            sizes=(1024,), leader_counts=(1,), repeats=3, sigma=0.05, base_seed=10
        )
        seeds = [p.seed for p in spec.points()]
        assert seeds == [10, 11, 12]
        assert [p.repeat for p in spec.points()] == [0, 1, 2]

    def test_empty_axes_rejected(self):
        with pytest.raises(ReproError, match="sizes"):
            small_spec(sizes=())
        with pytest.raises(ReproError, match="algorithms"):
            small_spec(algorithms=())
        with pytest.raises(ReproError, match="repeats"):
            small_spec(repeats=0)

    def test_nranks_and_session_key(self):
        point = small_spec().points()[0]
        assert point.nranks == 4
        assert point.session_key == ("b", 2, 2)

    def test_extra_kwargs_flow_to_algorithm(self):
        spec = small_spec(extra={"pipeline_unit": 8192})
        point = spec.points()[0]
        assert point.alg_kwargs() == {"pipeline_unit": 8192, "leaders": 1}


class TestHashing:
    def test_hash_stable_across_instances(self):
        assert small_spec().spec_hash() == small_spec().spec_hash()

    def test_hash_changes_with_content(self):
        assert small_spec().spec_hash() != small_spec(ppn=4).spec_hash()
        assert small_spec().spec_hash() != small_spec(sigma=0.1).spec_hash()

    def test_hash_survives_json_round_trip(self):
        spec = small_spec(repeats=2, sigma=0.05, extra={"k": 1})
        rt = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rt == spec
        assert rt.spec_hash() == spec.spec_hash()

    def test_short_hash_is_prefix_of_full_hash(self):
        spec = small_spec()
        full = spec.full_hash()
        assert len(full) == 64
        assert int(full, 16) >= 0  # hex digest
        assert spec.spec_hash() == full[:16]

    def test_full_hash_tracks_content(self):
        assert small_spec().full_hash() == small_spec().full_hash()
        assert small_spec().full_hash() != small_spec(ppn=4).full_hash()


class TestClusterRefs:
    def test_string_ref_resolves_via_presets(self):
        assert resolve_config("b", 4) == get_cluster("b", 4)

    def test_inline_config_round_trips(self):
        config = cluster_b(4)
        spec = small_spec(cluster=config, nodes=4)
        rt = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rt.cluster == config
        assert rt.spec_hash() == spec.spec_hash()

    def test_inline_config_renodes_on_resolve(self):
        config = cluster_b(8)
        assert resolve_config(config, 4).nodes == 4

    def test_point_config_materialises(self):
        point = small_spec().points()[0]
        assert point.config() == get_cluster("b", 2)


class TestResults:
    def _result(self, spec=None, fail_at=()):
        spec = spec or small_spec()
        results = tuple(
            PointResult(point=p, error="ValueError: boom")
            if i in fail_at
            else PointResult(point=p, latency=float(i + 1))
            for i, p in enumerate(spec.points())
        )
        return SweepResult(spec=spec, results=results, meta={"jobs": 1})

    def test_by_size_leaders_shape(self):
        result = self._result()
        data = result.by_size_leaders()
        assert set(data) == {1024, 4096}
        assert set(data[1024]) == {1, 2}
        assert data[1024][1] == 1.0

    def test_repeats_average(self):
        spec = small_spec(sizes=(1024,), leader_counts=(1,), repeats=2)
        result = self._result(spec)
        assert result.by_size_leaders()[1024][1] == pytest.approx(1.5)
        assert result.samples(nbytes=1024, leaders=1) == (1.0, 2.0)

    def test_errors_surface_on_access(self):
        result = self._result(fail_at=(2,))
        assert not result.ok
        assert len(result.errors) == 1
        with pytest.raises(ReproError, match="boom"):
            result.by_size_leaders()

    def test_wrong_result_count_rejected(self):
        spec = small_spec()
        with pytest.raises(ReproError, match="results"):
            SweepResult(spec=spec, results=(), meta={})

    def test_json_round_trip(self):
        result = self._result(fail_at=(1,))
        rt = SweepResult.from_json(result.to_json())
        assert rt.canonical_dict() == result.canonical_dict()
        assert rt.meta == result.meta

    def test_canonical_dict_excludes_meta(self):
        result = self._result()
        assert "meta" not in result.canonical_dict()
        assert "meta" in result.to_dict()


class TestNamedSweeps:
    def test_registry_covers_the_figures(self):
        for name in ("fig4", "fig5", "fig6", "fig7", "fig8",
                     "fig9a", "fig9b", "fig9c", "fig9d", "fig10"):
            assert name in SWEEPS
            spec = named_sweep(name)
            assert spec.n_points > 0
            # every named sweep must survive a JSON round trip
            rt = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert rt.spec_hash() == spec.spec_hash()

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="unknown sweep"):
            named_sweep("fig99")

    def test_leader_sweep_spec_defaults(self):
        spec = leader_sweep_spec("fig5")
        assert spec.cluster == "b"
        assert spec.ppn == 28
        assert spec.sizes == tuple(PAPER_SIZES)
        assert spec.algorithms == ("dpml",)
        assert spec.effective_leader_counts == (1, 2, 4, 8, 16)

    def test_algorithm_sweep_spec_defaults(self):
        spec = algorithm_sweep_spec("fig8")
        assert spec.sizes == tuple(SMALL_SIZES)
        assert "sharp_node_leader" in spec.algorithms
        assert spec.leader_counts == (None,)

    def test_overrides_flow_through(self):
        spec = named_sweep("fig5", sizes=[1024], repeats=2, sigma=0.05)
        assert spec.sizes == (1024,)
        assert spec.repeats == 2
        assert spec.sigma == 0.05


class TestFaultsField:
    """FaultPlan threading: serialisation, hashing, label, point flow."""

    @staticmethod
    def _plan():
        from repro.faults import ArrivalSkew, FaultPlan, Straggler

        return FaultPlan(
            faults=(
                Straggler(rank=0, factor=2.0),
                ArrivalSkew(magnitude=1e-4, pattern="sorted"),
            )
        )

    def test_fault_free_spec_dict_has_no_faults_key(self):
        # Pre-subsystem spec hashes (EXPERIMENTS.md) must stay stable:
        # the key only appears when a plan is set.
        assert "faults" not in small_spec().to_dict()
        assert "faults" not in small_spec().points()[0].to_dict()

    def test_faulted_spec_round_trips(self):
        spec = small_spec(faults=self._plan())
        back = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.spec_hash() == spec.spec_hash()

    def test_plan_changes_spec_hash(self):
        assert (
            small_spec(faults=self._plan()).spec_hash()
            != small_spec().spec_hash()
        )

    def test_plan_flows_into_every_point(self):
        spec = small_spec(faults=self._plan())
        for point in spec.iter_points():
            assert point.faults == self._plan()

    def test_point_round_trips_with_faults(self):
        point = small_spec(faults=self._plan()).points()[0]
        back = SamplePoint.from_dict(json.loads(json.dumps(point.to_dict())))
        assert back == point

    def test_label_names_the_plan(self):
        point = small_spec(faults=self._plan()).points()[0]
        assert self._plan().plan_hash() in point.label()
        assert "faults" not in small_spec().points()[0].label()

    def test_named_sweep_accepts_faults(self):
        spec = named_sweep("fig5", sizes=[1024], faults=self._plan())
        assert spec.faults == self._plan()
        assert (
            spec.spec_hash()
            != named_sweep("fig5", sizes=[1024]).spec_hash()
        )


class TestFidelityField:
    """Fidelity threading: conditional serialisation, hashing, points."""

    def test_exact_spec_dict_has_no_fidelity_key(self):
        # Pre-hybrid spec hashes must stay stable: the key only appears
        # for non-default fidelity, exactly like ``faults``.
        assert "fidelity" not in small_spec().to_dict()
        assert "fidelity" not in small_spec().points()[0].to_dict()
        assert small_spec().points()[0].session_key == ("b", 2, 2)

    def test_hybrid_spec_round_trips(self):
        spec = small_spec(fidelity="hybrid")
        back = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.spec_hash() == spec.spec_hash()

    def test_fidelity_changes_spec_hash(self):
        assert (
            small_spec(fidelity="hybrid").spec_hash()
            != small_spec().spec_hash()
        )

    def test_fidelity_flows_into_every_point(self):
        spec = small_spec(fidelity="hybrid")
        for point in spec.iter_points():
            assert point.fidelity == "hybrid"
            assert point.session_key == ("b", 2, 2, "hybrid")
            assert "hybrid" in point.label()

    def test_point_round_trips_with_fidelity(self):
        point = small_spec(fidelity="hybrid").points()[0]
        back = SamplePoint.from_dict(json.loads(json.dumps(point.to_dict())))
        assert back == point

    def test_unknown_fidelity_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="fidelity"):
            small_spec(fidelity="approximate")

    def test_named_sweep_accepts_fidelity(self):
        spec = named_sweep("fig5", sizes=[1024], fidelity="hybrid")
        assert spec.fidelity == "hybrid"
        assert (
            spec.spec_hash()
            != named_sweep("fig5", sizes=[1024]).spec_hash()
        )

    def test_hybrid_point_runs_and_matches_exact_point(self):
        spec = small_spec(sizes=(1024,), leader_counts=(2,))
        exact_point = spec.points()[0]
        hybrid_point = small_spec(
            sizes=(1024,), leader_counts=(2,), fidelity="hybrid"
        ).points()[0]
        exact = exact_point.run()
        hybrid = hybrid_point.run()
        assert exact > 0.0
        assert hybrid > 0.0
