"""Result store: keys, integrity, cold/warm identity, repair, eviction."""

import json
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench.executor import ParallelExecutor, SerialExecutor
from repro.bench.spec import PointResult, SweepSpec
from repro.bench.store import (
    STORE_ENV,
    ResultStore,
    compat_snapshot,
    point_key,
    resolve_store,
    spec_keys,
    store_from_env,
)
from repro.errors import ReproError
from repro.faults import ArrivalSkew, FaultPlan


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        cluster="b",
        nodes=2,
        ppn=2,
        sizes=(1024, 16384),
        algorithms=("dpml",),
        leader_counts=(1, 2),
        iterations=1,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestKeys:
    def test_truncated_spec_hash_rejected(self):
        spec = tiny_spec()
        point = spec.points()[0]
        with pytest.raises(ReproError, match="full_hash"):
            point_key(point, spec_hash=spec.spec_hash())

    def test_keys_are_full_digests_in_expansion_order(self):
        spec = tiny_spec()
        keys = spec_keys(spec)
        assert len(keys) == spec.n_points
        assert len(set(keys)) == spec.n_points
        assert all(len(k) == 64 and int(k, 16) >= 0 for k in keys)
        point = spec.points()[0]
        assert keys[0] == point_key(point, spec_hash=spec.full_hash())

    def test_variations_never_alias(self):
        """fidelity / compat / fault-plan / seed each move the key."""
        plan = FaultPlan(faults=(ArrivalSkew(magnitude=1e-4),))
        specs = {
            "base": tiny_spec(),
            "hybrid": tiny_spec(fidelity="hybrid"),
            "seeded": tiny_spec(base_seed=7),
            "faulty": tiny_spec(faults=plan),
        }
        keys = {name: spec_keys(s)[0] for name, s in specs.items()}
        compat_keys = {
            name: spec_keys(s, compat={"kernel": True, "payload": False})[0]
            for name, s in specs.items()
        }
        everything = list(keys.values()) + list(compat_keys.values())
        assert len(set(everything)) == len(everything)

    def test_same_point_same_key(self):
        spec = tiny_spec()
        assert spec_keys(spec) == spec_keys(tiny_spec())


class TestBlobLifecycle:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = spec_keys(tiny_spec())[0]
        store.put(key, {"latency": 1.25e-5, "error": None})
        assert store.get(key) == {"latency": 1.25e-5, "error": None}
        assert store.session_counters["hits"] == 1

    def test_miss_on_absent_key(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("ab" * 32) is None
        assert store.session_counters["misses"] == 1

    def test_blob_bytes_deterministic(self, tmp_path):
        store = ResultStore(tmp_path)
        key = spec_keys(tiny_spec())[0]
        store.put(key, {"latency": 2.0e-6, "error": None})
        first = store._path(key).read_bytes()
        store.put(key, {"latency": 2.0e-6, "error": None})
        assert store._path(key).read_bytes() == first

    def test_corrupt_blob_is_a_miss_and_write_back_repairs(self, tmp_path):
        store = ResultStore(tmp_path)
        key = spec_keys(tiny_spec())[0]
        store.put(key, {"latency": 3.0e-6, "error": None})
        path = store._path(key)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x04  # single bit flip
        path.write_bytes(bytes(raw))
        assert store.get(key) is None
        assert store.session_counters["corrupt"] == 1
        assert not path.exists()  # dropped so write-back can repair
        store.put(key, {"latency": 3.0e-6, "error": None})
        assert store.get(key) == {"latency": 3.0e-6, "error": None}

    def test_blob_under_wrong_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        k1, k2 = spec_keys(tiny_spec())[:2]
        store.put(k1, {"latency": 1e-6, "error": None})
        path2 = store._path(k2)
        path2.parent.mkdir(parents=True, exist_ok=True)
        path2.write_bytes(store._path(k1).read_bytes())  # copied blob
        assert store.get(k2) is None  # payload.key mismatch

    def test_errors_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        key = spec_keys(spec)[0]
        bad = PointResult(point=spec.points()[0], error="ValueError: boom")
        assert store.put_result(key, bad) is False
        assert store.get(key) is None

    def test_concurrent_writers_same_key_safe(self, tmp_path):
        store = ResultStore(tmp_path)
        key = spec_keys(tiny_spec())[0]
        result = {"latency": 4.5e-6, "error": None}
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: store.put(key, result), range(64)))
        assert store.get(key) == result
        # no stray temp files survive the storm
        leftovers = [
            p for p in store._path(key).parent.iterdir()
            if p.suffix == ".tmp"
        ]
        assert leftovers == []


class TestExecutorIntegration:
    def test_cold_then_warm_byte_identical(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path)
        executor = SerialExecutor()
        cold = executor.run(spec, store=store)
        warm = executor.run(spec, store=store)
        assert cold.meta["store"] == {
            "root": str(tmp_path), "hits": 0,
            "misses": spec.n_points, "stored": spec.n_points,
        }
        assert warm.meta["store"] == {
            "root": str(tmp_path), "hits": spec.n_points,
            "misses": 0, "stored": 0,
        }
        assert cold.to_json(include_meta=False) == warm.to_json(
            include_meta=False
        )

    def test_serial_parallel_cached_all_equivalent(self, tmp_path):
        spec = tiny_spec()
        plain = SerialExecutor().run(spec)
        store = ResultStore(tmp_path)
        parallel_cold = ParallelExecutor(2).run(spec, store=store)
        serial_warm = SerialExecutor().run(spec, store=store)
        reference = plain.to_json(include_meta=False)
        assert parallel_cold.to_json(include_meta=False) == reference
        assert serial_warm.to_json(include_meta=False) == reference
        assert serial_warm.meta["store"]["hits"] == spec.n_points

    def test_partial_warm_runs_only_missing_points(self, tmp_path):
        store = ResultStore(tmp_path)
        executor = SerialExecutor()
        executor.run(tiny_spec(sizes=(1024,)), store=store)
        # different spec -> different namespace -> nothing reusable
        other = executor.run(tiny_spec(sizes=(1024, 16384)), store=store)
        assert other.meta["store"]["hits"] == 0
        # same spec again -> fully warm
        again = executor.run(tiny_spec(sizes=(1024, 16384)), store=store)
        assert again.meta["store"]["hits"] == other.meta["n_points"]

    def test_failed_points_reexecute_on_warm_run(self, tmp_path):
        spec = tiny_spec(algorithms=("dpml", "no_such_algorithm"))
        store = ResultStore(tmp_path)
        executor = SerialExecutor()
        cold = executor.run(spec, store=store)
        warm = executor.run(spec, store=store)
        n_bad = len(cold.errors)
        assert n_bad > 0
        assert cold.meta["store"]["stored"] == spec.n_points - n_bad
        assert warm.meta["store"]["misses"] == n_bad
        assert cold.to_json(include_meta=False) == warm.to_json(
            include_meta=False
        )

    def test_progress_sees_every_point_when_warm(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path)
        SerialExecutor().run(spec, store=store)
        seen = []
        SerialExecutor().run(
            spec, store=store,
            progress=lambda done, total, r: seen.append((done, total)),
        )
        assert seen == [(i + 1, spec.n_points) for i in range(spec.n_points)]


class TestMaintenance:
    def _filled(self, tmp_path, n=4):
        store = ResultStore(tmp_path)
        for i, key in enumerate(spec_keys(tiny_spec())[:n]):
            store.put(key, {"latency": (i + 1) * 1e-6, "error": None})
        return store

    def test_stats(self, tmp_path):
        store = self._filled(tmp_path)
        stats = store.stats()
        assert stats["entries"] == 4
        assert stats["bytes"] > 0
        assert stats["counters"]["stored"] == 4

    def test_verify_reports_corruption_without_deleting(self, tmp_path):
        store = self._filled(tmp_path)
        victim = next(store.entries())
        victim.path.write_bytes(b"not json")
        report = store.verify()
        assert report["ok"] == 3
        assert report["corrupt"] == [victim.key]
        assert victim.path.exists()  # verify is a diagnostic

    def test_gc_by_age(self, tmp_path):
        store = self._filled(tmp_path)
        entries = list(store.entries())
        old = entries[0]
        os.utime(old.path, (old.mtime - 1000, old.mtime - 1000))
        report = store.gc(older_than=500)
        assert report["evicted"] == 1
        assert not old.path.exists()

    def test_gc_by_size_evicts_oldest_first(self, tmp_path):
        store = self._filled(tmp_path)
        entries = sorted(store.entries(), key=lambda e: e.key)
        for i, entry in enumerate(entries):
            stamp = 1_000_000 + i
            os.utime(entry.path, (stamp, stamp))
        keep_bytes = sum(e.size for e in entries[2:])
        report = store.gc(max_bytes=keep_bytes)
        assert report["evicted"] == 2
        survivors = {e.key for e in store.entries()}
        assert survivors == {e.key for e in entries[2:]}

    def test_gc_dry_run_evicts_nothing(self, tmp_path):
        store = self._filled(tmp_path)
        entries = sorted(store.entries(), key=lambda e: e.key)
        for i, entry in enumerate(entries):
            stamp = 1_000_000 + i
            os.utime(entry.path, (stamp, stamp))
        keep_bytes = sum(e.size for e in entries[2:])
        report = store.gc(max_bytes=keep_bytes, dry_run=True)
        # Same selection as the real pass, but nothing is unlinked.
        assert report["dry_run"] is True
        assert report["evicted"] == 2
        assert report["evicted_bytes"] == sum(e.size for e in entries[:2])
        assert {e.key for e in store.entries()} == {e.key for e in entries}
        # The real pass then evicts exactly what the dry run promised.
        real = store.gc(max_bytes=keep_bytes)
        assert real["dry_run"] is False
        assert real["evicted"] == report["evicted"]
        assert real["evicted_bytes"] == report["evicted_bytes"]
        assert {e.key for e in store.entries()} == {
            e.key for e in entries[2:]
        }

    def test_counters_persist_across_instances(self, tmp_path):
        store = self._filled(tmp_path)
        store.get(next(iter(spec_keys(tiny_spec()))))
        store.flush_counters()
        reopened = ResultStore(tmp_path)
        counters = reopened.cumulative_counters()
        assert counters["stored"] == 4
        assert counters["hits"] == 1
        assert json.loads(reopened.counters_path.read_text())["stored"] == 4


class TestResolution:
    def test_store_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert store_from_env() is None
        monkeypatch.setenv(STORE_ENV, str(tmp_path))
        store = store_from_env()
        assert store is not None and store.root == tmp_path

    def test_resolve_precedence(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "env"))
        assert resolve_store(None, True) is None  # --no-store wins
        explicit = resolve_store(str(tmp_path / "flag"), False)
        assert explicit.root == tmp_path / "flag"
        assert resolve_store(None, False).root == tmp_path / "env"

    def test_compat_snapshot_tracks_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_COMPAT", raising=False)
        assert compat_snapshot()["kernel"] is False
        monkeypatch.setenv("REPRO_KERNEL_COMPAT", "1")
        assert compat_snapshot()["kernel"] is True
