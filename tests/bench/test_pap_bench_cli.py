"""CLI smoke tests for ``benchmarks/bench_pap_imbalance.py``.

The faults-smoke CI job runs the script twice and diffs the canonical
JSON; these tests keep that contract honest from tier-1 — including
for the ``--algorithms`` panel carrying the literature families — on a
layout small enough for the unit suite.
"""

import importlib.util
import json
from pathlib import Path

_BENCH_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "bench_pap_imbalance.py"
)
_spec = importlib.util.spec_from_file_location("_pap_bench", _BENCH_PATH)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)

FAMILIES = ("dualroot_pipelined", "optimal_rsag", "generalized")


def test_default_panel_carries_literature_families():
    assert set(FAMILIES) <= set(bench.DEFAULT_ALGORITHMS)
    assert len(bench.DEFAULT_ALGORITHMS) >= 3  # resilience-curve floor


def test_cli_algorithms_panel_is_byte_deterministic(tmp_path, capsys):
    """Two seeded ``--algorithms`` runs write byte-identical JSON."""
    argv_for = lambda out: [
        "--nodes", "2", "--ppn", "2", "--iterations", "2",
        "--skews", "0.0,2e-4",
        "--algorithms", ",".join(FAMILIES),
        "--sanitize", "--output", str(out),
    ]
    first, second = tmp_path / "a.json", tmp_path / "b.json"
    assert bench.main(argv_for(first)) == 0
    assert bench.main(argv_for(second)) == 0
    capsys.readouterr()  # swallow the printed tables
    assert first.read_bytes() == second.read_bytes()
    record = json.loads(first.read_text())
    assert sorted(record["curves"]) == sorted(FAMILIES)
    for by_skew in record["curves"].values():
        # Skew visibly delays the job on every family.
        assert float(by_skew["0.0"]) < float(by_skew["0.0002"])


def test_bad_skews_rejected(capsys):
    assert bench.main(["--skews", "abc"]) == 2
    assert "comma-separated floats" in capsys.readouterr().err
