"""The hybrid-fidelity scale tier of the perf harness.

The scale scenarios are the tentpole's gate: a 10k-rank DPML allreduce
must complete in hybrid mode under a wall-clock ceiling, with every
collective macro-charged and kernel events bounded per rank.  These
tests exercise the runner on a small scaled layout, the real
``scale10k`` scenario end to end, and the gate arithmetic on synthetic
reports.
"""

import copy

import pytest

from repro.bench.perf import (
    SCALE_MAX_EVENTS_PER_RANK,
    SCALE_MAX_WALL,
    SCALE_MIN_MACRO_PER_POINT,
    SCALE_SCENARIOS,
    ScalePoint,
    _run_scale,
    canonical_json,
    gate_failures,
    run_perf,
    strip_volatile,
)


class TestScaleScenarios:
    def test_tier_covers_10k_to_100k_ranks(self):
        ranks = {
            name: sum(p.nranks for p in points)
            for name, points in SCALE_SCENARIOS.items()
        }
        assert ranks["scale10k"] == 10_000
        assert ranks["scale50k"] == 50_000
        assert ranks["scale100k"] == 100_000
        assert set(SCALE_MAX_WALL) == set(SCALE_SCENARIOS)

    def test_small_scale_point_runs_hybrid(self):
        record = _run_scale(
            ScalePoint("b", nodes=8, ppn=4, algorithm="dpml", nbytes=4096)
        )
        assert record["nranks"] == 32
        assert record["latency"] > 0.0
        assert record["kernel"]["macro_events"] >= SCALE_MIN_MACRO_PER_POINT
        assert (
            record["kernel"]["events_allocated"]
            <= SCALE_MAX_EVENTS_PER_RANK * record["nranks"]
        )
        assert record["ranks_per_second"] > 0

    def test_scale10k_scenario_end_to_end(self):
        """The acceptance scenario itself: 10k ranks, macro-charged,
        deterministic counters across two runs."""
        first = run_perf(["scale10k"])
        second = run_perf(["scale10k"])
        assert strip_volatile(first) == strip_volatile(second)
        scenario = first["scenarios"]["scale10k"]
        assert scenario["mode"] == "hybrid-scale"
        (record,) = scenario["points"]
        assert record["nranks"] == 10_000
        assert record["kernel"]["macro_events"] >= SCALE_MIN_MACRO_PER_POINT
        assert gate_failures(first) == []

    def test_canonical_json_is_byte_stable(self):
        report = run_perf(["scale10k"])
        text = canonical_json(report)
        assert text == canonical_json(copy.deepcopy(report))
        assert text.endswith("\n")
        assert "wall_seconds" not in text
        assert "ranks_per_second" not in text


class TestScaleGate:
    def _record(self, **overrides):
        base = {
            "point": "b-x1250/ppn8/dpml/4096B/hybrid",
            "nranks": 10_000,
            "latency": 3.2e-05,
            "wall_seconds": 1.0,
            "ranks_per_second": 10_000,
            "kernel": {
                "events_allocated": 10_002,
                "heap_pushes": 3,
                "heap_pops": 3,
                "nowq_entries": 30_000,
                "pool_reuses": 0,
                "macro_events": 3,
                "pool_evictions": 0,
            },
            "payload": {"bytes_copied": 0, "bytes_viewed": 0, "bytes_reduced": 0},
        }
        for key, value in overrides.items():
            if key in base["kernel"]:
                base["kernel"][key] = value
            else:
                base[key] = value
        return base

    def _report(self, record):
        return {
            "scenarios": {
                "scale10k": {"mode": "hybrid-scale", "points": [record]}
            }
        }

    def test_healthy_record_passes(self):
        assert gate_failures(self._report(self._record())) == []

    def test_wall_over_ceiling_fails(self):
        report = self._report(
            self._record(wall_seconds=SCALE_MAX_WALL["scale10k"] + 1.0)
        )
        failures = gate_failures(report)
        assert any("over" in f and "ceiling" in f for f in failures)

    def test_missing_macro_charges_fail(self):
        failures = gate_failures(self._report(self._record(macro_events=0)))
        assert any("macro_events" in f for f in failures)

    def test_per_message_event_regression_fails(self):
        blown = self._record(
            events_allocated=int(SCALE_MAX_EVENTS_PER_RANK * 10_000) + 1
        )
        failures = gate_failures(self._report(blown))
        assert any("events_allocated" in f for f in failures)
