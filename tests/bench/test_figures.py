"""Structural tests for the figure regenerators (fast, tiny sweeps).

The full-size shape assertions live in ``benchmarks/``; here we check
the FigureResult plumbing itself with minimal parameter grids.
"""

import pytest

from repro.bench.figures import (
    FIGURES,
    FigureResult,
    fig1_throughput,
    fig4_to_7_leaders,
    fig8_sharp,
    fig9_libraries,
    paper_scale,
)


class TestFigureResult:
    def test_table_includes_title_and_scale(self):
        result = FigureResult(
            name="Demo", rows=[{"a": 1}], columns=["a"], meta={"scale": "tiny"}
        )
        assert result.table.splitlines()[0] == "Demo  [tiny]"

    def test_table_without_scale(self):
        result = FigureResult(name="Demo", rows=[{"a": 1}], columns=["a"])
        assert result.table.splitlines()[0] == "Demo"


class TestRegistry:
    def test_all_paper_figures_registered(self):
        for name in ("fig1a", "fig1b", "fig1c", "fig1d", "fig4", "fig5",
                     "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig9c",
                     "fig9d", "fig10", "fig11a", "fig11bc", "model",
                     "ablation"):
            assert name in FIGURES

    def test_paper_scale_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert not paper_scale()
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert paper_scale()


class TestQuickRuns:
    def test_fig1_structure(self):
        result = fig1_throughput("b", iterations=1, sizes=[64, 65536])
        assert len(result.rows) == 2
        assert "pairs=14" in result.columns
        assert result.meta["data"][64][2] > 0

    def test_fig4_structure(self):
        result = fig4_to_7_leaders("fig4", iterations=1, sizes=[1024])
        assert result.rows[0]["size"] == "1KB"
        assert set(result.meta["data"][1024]) == {1, 2, 4, 8, 16}

    def test_fig8_structure(self):
        result = fig8_sharp(ppn=4, iterations=1, sizes=[64])
        row = result.rows[0]
        assert "nl-speedup" in row and row["nl-speedup"].endswith("x")

    def test_fig9_structure(self):
        result = fig9_libraries("c", iterations=1, sizes=[256])
        assert "intel_mpi" in result.columns
        assert "vs-intel" in result.columns
        result_b = fig9_libraries("b", iterations=1, sizes=[256])
        assert "intel_mpi" not in result_b.columns
