"""Executors: serial/parallel equivalence, error capture, progress."""

import pytest

from repro.bench.executor import (
    ParallelExecutor,
    SerialExecutor,
    default_executor,
    get_executor,
    run_point,
)
from repro.bench.spec import SamplePoint, SweepSpec
from repro.errors import ReproError


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        cluster="b",
        nodes=2,
        ppn=2,
        sizes=(1024, 16384),
        algorithms=("dpml",),
        leader_counts=(1, 2),
        iterations=1,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestRunPoint:
    def test_success(self):
        point = tiny_spec().points()[0]
        result = run_point(point)
        assert result.ok
        assert result.latency > 0

    def test_failure_captured_as_string(self):
        point = SamplePoint(
            cluster="b", nodes=2, ppn=2, algorithm="no_such_algorithm",
            nbytes=1024,
        )
        result = run_point(point)
        assert not result.ok
        assert result.latency is None
        assert result.error.split(":")[0].isidentifier()  # "Type: msg" shape
        assert "\n" not in result.error  # no traceback


class TestSerialExecutor:
    def test_runs_all_points_in_order(self):
        spec = tiny_spec()
        result = SerialExecutor().run(spec)
        assert result.ok
        assert [r.point for r in result.results] == list(spec.points())
        assert result.meta["executor"] == "serial"
        assert result.meta["spec_hash"] == spec.spec_hash()

    def test_one_bad_point_does_not_kill_the_sweep(self):
        spec = tiny_spec(algorithms=("dpml", "no_such_algorithm"))
        result = SerialExecutor().run(spec)
        assert not result.ok
        good = [r for r in result.results if r.ok]
        bad = [r for r in result.results if not r.ok]
        assert len(good) == len(bad) == len(result.results) // 2
        assert all(r.point.algorithm == "dpml" for r in good)

    def test_progress_callback_sees_every_point(self):
        spec = tiny_spec()
        seen = []
        SerialExecutor().run(
            spec, progress=lambda done, total, r: seen.append((done, total))
        )
        assert seen == [(i + 1, spec.n_points) for i in range(spec.n_points)]


class TestParallelExecutor:
    def test_matches_serial_bit_for_bit(self):
        spec = tiny_spec()
        serial = SerialExecutor().run(spec)
        parallel = ParallelExecutor(2).run(spec)
        assert serial.canonical_dict() == parallel.canonical_dict()
        assert serial.to_json(include_meta=False) == parallel.to_json(
            include_meta=False
        )

    def test_matches_serial_with_errors_and_noise(self):
        spec = tiny_spec(
            algorithms=("dpml", "no_such_algorithm"), repeats=2, sigma=0.05
        )
        serial = SerialExecutor().run(spec)
        parallel = ParallelExecutor(2).run(spec)
        assert serial.canonical_dict() == parallel.canonical_dict()

    def test_more_jobs_than_points(self):
        spec = tiny_spec(sizes=(1024,), leader_counts=(1,))
        result = ParallelExecutor(8).run(spec)
        assert result.ok
        assert result.meta["jobs"] == 8

    def test_progress_counts_every_point(self):
        spec = tiny_spec()
        seen = []
        ParallelExecutor(2).run(
            spec, progress=lambda done, total, r: seen.append(done)
        )
        assert sorted(seen) == list(range(1, spec.n_points + 1))

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ReproError, match="jobs"):
            ParallelExecutor(0)


class TestSelection:
    def test_get_executor(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(3), ParallelExecutor)
        assert get_executor(3).jobs == 3

    def test_default_executor_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_JOBS", raising=False)
        assert isinstance(default_executor(), SerialExecutor)
        monkeypatch.setenv("REPRO_BENCH_JOBS", "2")
        ex = default_executor()
        assert isinstance(ex, ParallelExecutor)
        assert ex.jobs == 2
        monkeypatch.setenv("REPRO_BENCH_JOBS", "nope")
        with pytest.raises(ReproError, match="REPRO_BENCH_JOBS"):
            default_executor()


class TestSessionReplay:
    """Session reuse replays stochastic runs bit-identically.

    The executor-equivalence guarantees above rest on this: a reused
    :class:`~repro.mpi.runtime.SimSession` re-seeds the noise model and
    the fault injector on every ``reset()``, so sharing one session (and
    one ``NoiseModel``/``FaultInjector`` instance) across runs gives the
    same results as building everything fresh each time.
    """

    @staticmethod
    def _job(comm):
        from repro.payload import SUM, SymbolicPayload

        result = yield from comm.allreduce(
            SymbolicPayload(256, 8), SUM, algorithm="dpml"
        )
        return (comm.now, result.count)

    def test_reused_noise_and_faults_match_fresh_builds(self):
        from repro.faults import ArrivalSkew, FaultInjector, FaultPlan
        from repro.machine.clusters import cluster_b
        from repro.machine.noise import NoiseModel
        from repro.mpi.runtime import SimSession, run_job

        plan = FaultPlan(
            faults=(ArrivalSkew(magnitude=1e-4, pattern="random"),)
        )
        session = SimSession(cluster_b(2), 4, 2)
        noise = NoiseModel(sigma=0.05, seed=11)
        injector = FaultInjector.for_machine(plan, session.machine, seed=7)

        reused = [
            session.run(self._job, noise=noise, faults=injector)
            for _ in range(3)
        ]
        # Same session, same stochastic model instances: every run
        # replays bit-identically (values, elapsed, fault counters).
        for job in reused[1:]:
            assert job.values == reused[0].values
            assert job.elapsed == reused[0].elapsed
            assert job.counters["faults"] == reused[0].counters["faults"]

        # ... and matches a from-scratch build with fresh instances.
        from repro.machine.machine import Machine

        machine = Machine(
            cluster_b(2), 4, 2, noise=NoiseModel(sigma=0.05, seed=11)
        )
        machine.faults = FaultInjector.for_machine(plan, machine, seed=7)
        fresh_job = run_job(machine, 4, self._job)
        assert fresh_job.values == reused[0].values
        assert fresh_job.elapsed == reused[0].elapsed

    def test_reset_rewinds_noise_rng(self):
        from repro.machine.noise import NoiseModel

        noise = NoiseModel(sigma=0.1, seed=3)
        first = [noise.perturb(1.0) for _ in range(5)]
        noise.reset()
        assert [noise.perturb(1.0) for _ in range(5)] == first
