"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plotting import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            {"a": {64: 1e-5, 1024: 1e-4}, "b": {64: 2e-5, 1024: 3e-4}},
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert "*" in chart and "o" in chart  # two series markers
        assert "* a" in chart and "o b" in chart  # legend
        assert "message size (B)" in chart

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": {}})

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": {64: 0.0}})
        with pytest.raises(ValueError):
            ascii_chart({"a": {-1: 1.0}})

    def test_single_point_series(self):
        chart = ascii_chart({"a": {64: 1e-5}})
        assert "*" in chart

    def test_monotone_series_renders_monotone(self):
        """Higher y values appear on higher rows."""
        chart = ascii_chart(
            {"a": {10: 1e-6, 100: 1e-4, 1000: 1e-2}}, width=30, height=9
        )
        rows_with_marker = [
            i for i, line in enumerate(chart.splitlines())
            if "|" in line and "*" in line
        ]
        # Three points on three distinct rows, descending row = ascending y.
        assert len(rows_with_marker) == 3

    def test_custom_labels_and_scale(self):
        chart = ascii_chart(
            {"a": {64: 2.0}},
            ylabel="relative throughput",
            yscale=1.0,
        )
        assert "relative throughput" in chart

    def test_dimensions_respected(self):
        chart = ascii_chart(
            {"a": {64: 1e-5, 4096: 1e-3}}, width=40, height=8
        )
        body = [l for l in chart.splitlines() if "|" in l]
        assert len(body) == 8
        assert all(len(l.split("|", 1)[1]) <= 40 for l in body)
