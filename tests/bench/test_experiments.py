"""Tests for the EXPERIMENTS.md generator."""

import pytest

from repro.bench.experiments import _EXPERIMENTS, generate_experiments_report


class TestExperimentIndex:
    def test_all_paper_figures_covered(self):
        ids = [e[0] for e in _EXPERIMENTS]
        # Every evaluation figure of the paper appears.
        for required in ("E1a", "E1b", "E1c", "E1d", "E2", "E3", "E4", "E5",
                         "E6", "E7a", "E7b", "E7c", "E7d", "E8", "E9", "E10",
                         "E11", "E13"):
            assert required in ids

    def test_ids_unique(self):
        ids = [e[0] for e in _EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_every_entry_has_a_claim(self):
        for exp_id, claim, runner in _EXPERIMENTS:
            assert claim.strip()
            assert callable(runner)


class TestReportGeneration:
    def test_selected_subset_renders(self, tmp_path):
        out = tmp_path / "exp.md"
        report = generate_experiments_report(out=str(out), selected={"E1c"})
        assert "# EXPERIMENTS" in report
        assert "E1c" in report
        assert "**Paper:**" in report
        assert "**Measured:**" in report
        assert "```" in report  # embedded table
        assert out.read_text() == report

    def test_unselected_experiments_excluded(self):
        report = generate_experiments_report(selected={"E1c"})
        assert "E7b" not in report
