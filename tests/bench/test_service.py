"""Sweep service: concurrency, dedup, store integration, the demo."""

import asyncio

import pytest

from repro.bench.executor import SerialExecutor
from repro.bench.service import SweepService, demo_specs, run_demo
from repro.bench.spec import SweepSpec
from repro.bench.store import ResultStore
from repro.errors import ReproError


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        cluster="b",
        nodes=2,
        ppn=2,
        sizes=(1024, 16384),
        algorithms=("dpml",),
        leader_counts=(1, 2),
        iterations=1,
    )
    base.update(overrides)
    return SweepSpec(**base)


def run(coro):
    return asyncio.run(coro)


class TestService:
    def test_single_sweep_matches_serial(self):
        spec = tiny_spec()

        async def go():
            async with SweepService(workers=2) as service:
                return await service.run_sweep(spec)

        result = run(go())
        reference = SerialExecutor().run(spec)
        assert result.to_json(include_meta=False) == reference.to_json(
            include_meta=False
        )
        assert result.meta["executor"] == "service"
        assert result.meta["service"]["executed"] == spec.n_points

    def test_concurrent_duplicates_dedup(self):
        spec = tiny_spec()

        async def go():
            async with SweepService(workers=2) as service:
                results = await asyncio.gather(
                    *(service.run_sweep(spec) for _ in range(3))
                )
                return results, dict(service.counters)

        results, counters = run(go())
        payloads = {r.to_json(include_meta=False) for r in results}
        assert len(payloads) == 1  # all three byte-identical
        # 3 requests x n points, but only n simulations admitted
        assert counters["executed"] == spec.n_points
        assert counters["deduped"] == 2 * spec.n_points

    def test_store_warms_across_requests(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path)

        async def go():
            async with SweepService(store=store, workers=2) as service:
                first = await service.run_sweep(spec)
                second = await service.run_sweep(spec)
                return first, second

        first, second = run(go())
        assert first.meta["service"] == {
            "hits": 0, "executed": spec.n_points, "deduped": 0,
        }
        assert second.meta["service"] == {
            "hits": spec.n_points, "executed": 0, "deduped": 0,
        }
        assert first.to_json(include_meta=False) == second.to_json(
            include_meta=False
        )

    def test_errors_surface_and_are_not_cached(self, tmp_path):
        spec = tiny_spec(algorithms=("no_such_algorithm",))
        store = ResultStore(tmp_path)

        async def go():
            async with SweepService(store=store, workers=2) as service:
                first = await service.run_sweep(spec)
                second = await service.run_sweep(spec)
                return first, second

        first, second = run(go())
        assert not first.ok
        assert second.meta["service"]["hits"] == 0  # errors re-execute
        assert first.to_json(include_meta=False) == second.to_json(
            include_meta=False
        )

    def test_mixed_sweeps_all_match_serial(self):
        specs = demo_specs(4)

        async def go():
            async with SweepService(workers=3, max_pending=4) as service:
                return await asyncio.gather(
                    *(service.run_sweep(s) for s in specs)
                )

        results = run(go())
        serial = SerialExecutor()
        for spec, result in zip(specs, results):
            assert result.to_json(include_meta=False) == serial.run(
                spec
            ).to_json(include_meta=False)

    def test_drain_delivers_then_refuses(self):
        spec = tiny_spec()

        async def go():
            service = SweepService(workers=2)
            await service.start()
            result = await service.run_sweep(spec)
            await service.drain()
            with pytest.raises(ReproError, match="draining"):
                await service.run_sweep(spec)
            return service, result

        service, result = run(go())
        assert result.ok
        # Fully shut down: no worker tasks, no thread pool, no queue.
        assert service._tasks == []
        assert service._pool is None
        assert service._queue is None

    def test_drain_waits_for_inflight_requests(self):
        specs = [tiny_spec(), tiny_spec(sizes=(4096,), leader_counts=(2,))]

        async def go():
            service = SweepService(workers=2)
            await service.start()
            # Kick off sweeps concurrently, then drain while they run:
            # drain must deliver every admitted point before closing.
            tasks = [
                asyncio.create_task(service.run_sweep(s)) for s in specs
            ]
            await asyncio.sleep(0)  # let the requests admit their points
            await service.drain()
            return await asyncio.gather(*tasks)

        results = run(go())
        assert all(r.ok for r in results)
        references = [SerialExecutor().run(s) for s in specs]
        for result, reference in zip(results, references):
            assert result.to_json(include_meta=False) == reference.to_json(
                include_meta=False
            )

    def test_drain_on_idle_service(self):
        async def go():
            service = SweepService(workers=1)
            await service.drain()  # never started: still a clean no-op
            return service

        service = run(go())
        assert service._queue is None

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ReproError, match="workers"):
            SweepService(workers=0)
        with pytest.raises(ReproError, match="max_pending"):
            SweepService(max_pending=0)


class TestDemo:
    def test_demo_specs_cycle(self):
        specs = demo_specs(6)
        assert len(specs) == 6
        assert specs[4] == specs[0] and specs[5] == specs[1]
        assert len({s.full_hash() for s in specs[:4]}) == 4

    def test_run_demo_verifies_against_serial(self, tmp_path):
        report = run_demo(
            requests=4, workers=2, store=ResultStore(tmp_path)
        )
        assert report["mismatched"] == 0
        assert report["matched"] == 4
        assert report["counters"]["points"] == sum(
            d["n_points"] for d in report["detail"]
        )
        assert all(d["ok"] for d in report["detail"])

    def test_run_demo_requires_concurrency(self):
        with pytest.raises(ReproError, match=">= 4"):
            run_demo(requests=2)
