"""FailureDetector: attribution, probing, heartbeats, determinism."""

from repro.faults import FaultPlan, LinkOutage
from repro.machine.clusters import cluster_b
from repro.machine.machine import Machine
from repro.mpi.runtime import _as_injector
from repro.resilience import FailureDetector, RecoveryPolicy


def make_injector(plan, nodes=3, ppn=2, seed=0):
    machine = Machine(cluster_b(nodes), nodes * ppn, ppn)
    return _as_injector(plan, machine, seed)


class TestExhaustionSignals:
    def test_destination_preferred_over_source(self):
        # One exhausted edge 0->2: both endpoints get incidence, but the
        # unreachable destination carries the dst-hit and wins the tie.
        det = FailureDetector(RecoveryPolicy())
        det.observe_exhaustion(0, 0, 2, 1e-5, 3)
        assert det.suspect() == 2

    def test_duplicate_edges_counted_once(self):
        det = FailureDetector(RecoveryPolicy(suspect_after=2))
        det.observe_exhaustion(0, 0, 2, 1e-5, 3)
        det.observe_exhaustion(1, 0, 2, 2e-5, 3)
        assert det.suspect() is None  # same edge: incidence stays 1
        det.observe_exhaustion(0, 1, 2, 3e-5, 3)
        assert det.suspect() == 2  # second distinct edge into node 2

    def test_threshold_respected(self):
        det = FailureDetector(RecoveryPolicy(suspect_after=3))
        det.observe_exhaustion(0, 0, 2, 1e-5, 3)
        det.observe_exhaustion(0, 1, 2, 2e-5, 3)
        assert det.suspect() is None

    def test_signals_are_logged_in_order(self):
        det = FailureDetector(RecoveryPolicy())
        det.observe_exhaustion(4, 2, 1, 1e-5, 6)
        det.observe_heartbeat_timeout(1, 2e-5)
        kinds = [s["signal"] for s in det.signals]
        assert kinds == ["retry-exhausted", "heartbeat-timeout"]
        assert det.signals[0]["edge"] == [2, 1]
        assert det.signals[0]["attempts"] == 6


class TestProbeRound:
    def test_probe_disambiguates_isolated_victim(self):
        # The victim's own send to a healthy peer raises first: edge
        # (2, 0) alone would implicate healthy node 0.  The probe sweep
        # sees node 2 isolated (every edge touching it blocked) and its
        # incidence dominates.
        plan = FaultPlan(faults=(
            LinkOutage(src=2, dst=None, start=0.0, duration=None),
            LinkOutage(src=None, dst=2, start=0.0, duration=None),
        ))
        faults = make_injector(plan)
        det = FailureDetector(RecoveryPolicy())
        det.observe_exhaustion(4, 2, 0, 1e-5, 3)
        det.probe(faults, nnodes=3, now=1e-5)
        assert det.suspect() == 2

    def test_probe_noop_without_outages(self):
        det = FailureDetector(RecoveryPolicy())
        det.probe(None, nnodes=3, now=0.0)
        assert det.suspect() is None

    def test_probe_before_outage_start_sees_nothing(self):
        plan = FaultPlan(faults=(
            LinkOutage(src=2, dst=None, start=1e-3, duration=None),
        ))
        faults = make_injector(plan)
        det = FailureDetector(RecoveryPolicy())
        det.probe(faults, nnodes=3, now=1e-5)
        assert det.suspect() is None


class TestHeartbeat:
    def test_heartbeat_timeout_charges_full_threshold(self):
        det = FailureDetector(RecoveryPolicy(suspect_after=4))
        det.observe_heartbeat_timeout(1, 5e-3)
        assert det.suspect() == 1


class TestConfirmation:
    def test_confirmed_nodes_never_suspected_again(self):
        det = FailureDetector(RecoveryPolicy())
        det.observe_exhaustion(0, 0, 2, 1e-5, 3)
        assert det.suspect() == 2
        det.confirm(2)
        assert det.suspect() != 2

    def test_next_suspect_after_confirmation(self):
        det = FailureDetector(RecoveryPolicy())
        det.observe_exhaustion(0, 0, 2, 1e-5, 3)
        det.confirm(2)
        det.observe_exhaustion(0, 3, 1, 2e-5, 3)
        assert det.suspect() == 1

    def test_repeated_source_implicates_the_common_endpoint(self):
        # Two distinct edges out of node 0 to different peers: the
        # common endpoint (node 0's own NIC) carries incidence 2 and
        # outranks either single-hit destination.
        det = FailureDetector(RecoveryPolicy())
        det.observe_exhaustion(0, 0, 2, 1e-5, 3)
        det.observe_exhaustion(0, 0, 1, 2e-5, 3)
        assert det.suspect() == 0

    def test_counters_snapshot(self):
        det = FailureDetector(RecoveryPolicy())
        det.observe_exhaustion(0, 0, 2, 1e-5, 3)
        det.confirm(2)
        snap = det.counters()
        assert snap["confirmed"] == [2]
        assert snap["incidence"] == {"0": 1, "2": 1}
        assert len(snap["signals"]) == 1
