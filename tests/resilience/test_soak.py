"""Chaos harness: contract coverage, determinism, CLI."""

import json

import pytest

from repro.resilience.cli import main
from repro.resilience.soak import canonical_json, soak


@pytest.fixture(scope="module")
def batch():
    # One shared batch: every mode appears at least once in 6 scenarios.
    return soak(seed=0, scenarios=6)


class TestContract:
    def test_every_scenario_satisfies_recover_or_abort(self, batch):
        assert batch["summary"]["failures"] == 0
        assert batch["summary"]["ok"] == batch["summary"]["total"] == 6

    def test_all_modes_exercised(self, batch):
        modes = {r["mode"] for r in batch["scenarios"]}
        assert modes == {"recover", "disabled", "exhausted"}

    def test_typed_aborts_carry_the_edge(self, batch):
        aborts = [
            r for r in batch["scenarios"] if r["outcome"] == "typed-abort"
        ]
        for r in aborts:
            assert r["error"] == "TransportError"
            assert r["victim"] in r["edge"]
            assert r["attempts"] >= 1

    def test_recovered_scenarios_name_the_victim(self, batch):
        recovered = [
            r for r in batch["scenarios"]
            if r["outcome"] in ("recovered", "recovered-replay")
        ]
        for r in recovered:
            assert r["failovers"] == [r["victim"]]
            assert r["dead_nodes"] == [r["victim"]]


class TestDeterminism:
    def test_same_seed_is_byte_identical(self, batch):
        again = soak(seed=0, scenarios=6)
        assert canonical_json(batch) == canonical_json(again)

    def test_canonical_json_round_trips(self, batch):
        assert json.loads(canonical_json(batch)) == batch

    def test_different_seed_differs(self, batch):
        other = soak(seed=1, scenarios=6)
        assert canonical_json(other) != canonical_json(batch)


class TestValidationErrors:
    def test_single_node_rejected(self):
        with pytest.raises(ValueError, match="at least 2 nodes"):
            soak(nodes=1)


class TestCli:
    def test_soak_writes_canonical_record(self, tmp_path):
        out = tmp_path / "soak.json"
        code = main([
            "soak", "--seed", "3", "--scenarios", "3", "--output", str(out),
        ])
        assert code == 0
        record = json.loads(out.read_text())
        assert record["seed"] == 3
        assert record["summary"]["failures"] == 0

    def test_policy_round_trip(self, tmp_path, capsys):
        assert main(["example"]) == 0
        text = capsys.readouterr().out
        path = tmp_path / "policy.json"
        path.write_text(text)
        assert main(["validate", str(path)]) == 0
        assert "ok:" in capsys.readouterr().out
        assert main(["describe", str(path)]) == 0
        assert "recovery policy" in capsys.readouterr().out

    def test_validate_missing_file_exits(self):
        with pytest.raises(SystemExit, match="no such file"):
            main(["validate", "/nonexistent/policy.json"])
