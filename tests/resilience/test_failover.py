"""Leader failover end to end: the subsystem's acceptance criteria.

The golden scenario: a dpml allreduce on ``cluster_b(3)`` with a
permanent outage isolating node 2 (one of the leaders).  With recovery
enabled the job completes via failover with result buffers
bit-identical to a fault-free run on the surviving layout; with it
disabled the same scenario raises the typed transport error — the same
decision at the same simulated time under both kernel compat modes and
both fidelities.
"""

import numpy as np
import pytest

from repro.check import reports as R
from repro.check.sanitizer import Sanitizer
from repro.errors import RecoveryError, TransportError
from repro.machine.clusters import cluster_b
from repro.mpi.runtime import run_job
from repro.payload import SUM, make_payload
from repro.resilience import RecoveryManager, RecoveryPolicy, isolation_plan
from repro.sim import Simulator

POLICY = RecoveryPolicy()

#: Node 2 cut off in both directions from t=0, fast retry exhaustion.
ISOLATE_NODE2 = isolation_plan(2, 0.0)


def allreduce_fn(comm, count=8, algorithm="dpml"):
    data = make_payload(
        count, data=np.arange(count, dtype=np.float32) + float(comm.rank)
    )
    result = yield from comm.allreduce(data, SUM, algorithm=algorithm)
    return list(map(float, result.array))


def run_recovered(**kwargs):
    return run_job(
        cluster_b(3), 6, allreduce_fn, ppn=2,
        faults=ISOLATE_NODE2, recovery=POLICY, **kwargs,
    )


class TestAcceptance:
    def test_failover_completes_bit_identical_to_survivor_reference(self):
        job = run_recovered(sanitize=True)
        reference = run_job(
            cluster_b(3), 6, allreduce_fn, ppn=2, sanitize=True,
            recovery=RecoveryManager(POLICY, pin_failed_nodes=[2]),
        )
        assert job.values == reference.values
        assert job.values[4] is None and job.values[5] is None
        resilience = job.counters["resilience"]
        assert [f["node"] for f in resilience["failovers"]] == [2]
        assert resilience["dead_nodes"] == [2]
        assert resilience["dead_ranks"] == [4, 5]
        assert resilience["failovers"][0]["boundary"] == 0

    def test_recovered_run_is_deterministic(self):
        first, second = run_recovered(), run_recovered()
        assert first.values == second.values
        assert first.elapsed == second.elapsed
        assert first.counters["resilience"] == second.counters["resilience"]

    def test_decision_is_seed_independent_for_same_plan_and_policy(self):
        # The recover-or-abort decision is a function of the
        # (plan, policy) pair; the injector seed only perturbs
        # realised noise, which this plan has none of.
        runs = [run_recovered(fault_seed=seed) for seed in (0, 1, 7)]
        assert all(r.values == runs[0].values for r in runs)
        assert all(
            r.counters["resilience"]["failovers"]
            == runs[0].counters["resilience"]["failovers"]
            for r in runs
        )

    def test_without_recovery_raises_typed_transport_error(self):
        with pytest.raises(TransportError) as info:
            run_job(
                cluster_b(3), 6, allreduce_fn, ppn=2, faults=ISOLATE_NODE2,
            )
        err = info.value
        assert 2 in err.edge
        assert err.attempts == ISOLATE_NODE2.retry_limit
        assert err.sim_time > 0.0
        assert 0 <= err.rank < 6

    def test_disabled_policy_behaves_like_no_recovery(self):
        with pytest.raises(TransportError):
            run_job(
                cluster_b(3), 6, allreduce_fn, ppn=2, faults=ISOLATE_NODE2,
                recovery=RecoveryPolicy(enabled=False),
            )


class TestMatrix:
    """Same decision at the same sim time across compat modes and fidelities."""

    @pytest.mark.parametrize("fidelity", ["exact", "hybrid"])
    @pytest.mark.parametrize("compat", [False, True])
    def test_recover_decision_matches(self, fidelity, compat):
        baseline = run_recovered()
        job = run_recovered(
            sim=Simulator(compat=True) if compat else None, fidelity=fidelity,
        )
        assert job.values == baseline.values
        assert job.elapsed == baseline.elapsed
        assert (
            job.counters["resilience"]["failovers"]
            == baseline.counters["resilience"]["failovers"]
        )

    @pytest.mark.parametrize("fidelity", ["exact", "hybrid"])
    @pytest.mark.parametrize("compat", [False, True])
    def test_abort_decision_matches(self, fidelity, compat):
        with pytest.raises(TransportError) as base_info:
            run_job(cluster_b(3), 6, allreduce_fn, ppn=2, faults=ISOLATE_NODE2)
        with pytest.raises(TransportError) as info:
            run_job(
                cluster_b(3), 6, allreduce_fn, ppn=2, faults=ISOLATE_NODE2,
                sim=Simulator(compat=True) if compat else None,
                fidelity=fidelity,
            )
        assert info.value.sim_time == base_info.value.sim_time
        assert info.value.edge == base_info.value.edge
        assert info.value.attempts == base_info.value.attempts

    def test_hybrid_with_recovery_never_macro_charges(self):
        # A recovery layer forces the exact per-message path wholesale:
        # the detector needs real transport traffic to observe.
        job = run_job(
            cluster_b(3), 6, allreduce_fn, ppn=2,
            fidelity="hybrid", recovery=POLICY,
        )
        assert job.counters["macro_events"] == 0
        control = run_job(
            cluster_b(3), 6, allreduce_fn, ppn=2, fidelity="hybrid",
        )
        assert control.counters["macro_events"] > 0


class TestUnrecoverable:
    def test_zero_budget_raises_double_failover(self):
        with pytest.raises(RecoveryError) as info:
            run_job(
                cluster_b(3), 6, allreduce_fn, ppn=2, faults=ISOLATE_NODE2,
                recovery=RecoveryPolicy(max_failovers=0),
            )
        assert info.value.kind == "double-failover"

    def test_zero_budget_records_sanitizer_report(self):
        sanitizer = Sanitizer(strict=False)
        with pytest.raises(RecoveryError):
            run_job(
                cluster_b(3), 6, allreduce_fn, ppn=2, faults=ISOLATE_NODE2,
                recovery=RecoveryPolicy(max_failovers=0), sanitize=sanitizer,
            )
        kinds = [r.kind for r in sanitizer.reports]
        assert R.RESILIENCE_DOUBLE_FAILOVER in kinds

    def test_lost_partition_when_every_node_is_dead(self):
        from repro.machine.machine import Machine

        machine = Machine(cluster_b(2), 4, 2)
        manager = RecoveryManager(POLICY, pin_failed_nodes=[0])
        manager.begin_job(machine)
        manager.detector.observe_exhaustion(0, 0, 1, 1e-5, 3)
        with pytest.raises(RecoveryError) as info:
            manager.plan_failover(machine, 1e-5)
        assert info.value.kind == "lost-partition"


class TestBoundaryReplay:
    """Completed collectives are replayed, not re-run, after a failover."""

    @staticmethod
    def two_collectives(comm, start):
        data = make_payload(
            8, data=np.arange(8, dtype=np.float32) + float(comm.rank)
        )
        first = yield from comm.allreduce(data, SUM, algorithm="dpml")
        if comm.now < start:
            # Idle past the outage start so the second collective (and
            # only it) runs into the failure.
            yield comm.sim.timeout(start - comm.now)
        second = yield from comm.allreduce(data, SUM, algorithm="dpml")
        return (list(map(float, first.array)), list(map(float, second.array)))

    def test_first_collective_replays_second_reruns(self):
        probe = run_job(
            cluster_b(3), 6, self.two_collectives, ppn=2, args=(0.0,),
        )
        start = float(probe.elapsed) * 2.0
        job = run_job(
            cluster_b(3), 6, self.two_collectives, ppn=2,
            args=(start,),
            faults=isolation_plan(2, start), recovery=POLICY,
        )
        resilience = job.counters["resilience"]
        assert [f["node"] for f in resilience["failovers"]] == [2]
        assert resilience["failovers"][0]["boundary"] == 1
        reference = run_job(
            cluster_b(3), 6, self.two_collectives, ppn=2,
            args=(start,),
            recovery=RecoveryManager(POLICY, pin_failed_nodes=[2]),
        )
        for rank in range(4):
            first, second = job.values[rank]
            # The pre-failure collective keeps its full-world result...
            assert first == probe.values[rank][0]
            # ...while the re-run one matches the survivor-only layout.
            assert second == reference.values[rank][1]
        assert job.values[4] is None and job.values[5] is None


class TestPostShrink:
    def test_recovered_run_passes_strict_sanitizer(self):
        run_recovered(sanitize=True)  # strict: raises on any report

    def test_leak_toward_dead_rank_is_reported(self):
        # Doctor a dead rank's matcher: unmatched state parked there
        # after the shrink must be flagged.
        from repro.mpi.runtime import Runtime
        from repro.machine.machine import Machine

        machine = Machine(cluster_b(3), 6, 2)
        runtime = Runtime(machine, recovery=RecoveryManager(
            POLICY, pin_failed_nodes=[2]
        ))
        runtime.recovery.begin_job(machine)
        runtime.transport.matchers[4].post(0, 7, 0, lambda env: None)
        sanitizer = Sanitizer(strict=False)
        runtime.recovery.post_shrink_check(runtime, sanitizer)
        kinds = [r.kind for r in sanitizer.reports]
        assert R.RESILIENCE_POST_SHRINK_LEAK in kinds
