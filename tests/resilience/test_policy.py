"""RecoveryPolicy schema: round-trip, validation, hashing, coercion."""

import pytest

from repro.errors import ConfigError
from repro.resilience import RecoveryManager, RecoveryPolicy, as_manager


class TestRoundTrip:
    def test_default_round_trips_through_json(self):
        policy = RecoveryPolicy()
        assert RecoveryPolicy.from_json(policy.to_json()) == policy

    def test_custom_round_trips(self):
        policy = RecoveryPolicy(
            max_failovers=3, suspect_after=2, restart_latency=1e-3,
            heartbeat_timeout=1e-2, fallback_algorithm="ring",
        )
        assert RecoveryPolicy.from_dict(policy.to_dict()) == policy

    def test_load(self, tmp_path):
        path = tmp_path / "policy.json"
        policy = RecoveryPolicy(max_failovers=2)
        path.write_text(policy.to_json())
        assert RecoveryPolicy.load(str(path)) == policy

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown recovery policy"):
            RecoveryPolicy.from_dict({"max_failovers": 1, "retries": 9})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError, match="JSON object"):
            RecoveryPolicy.from_dict([1, 2])

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            RecoveryPolicy.from_json("{nope")


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_failovers": -1},
            {"suspect_after": 0},
            {"restart_latency": -1e-6},
            {"heartbeat_timeout": 0.0},
            {"fallback_algorithm": ""},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RecoveryPolicy(**kwargs)


class TestHash:
    def test_hash_is_stable_and_content_addressed(self):
        a = RecoveryPolicy()
        b = RecoveryPolicy()
        c = RecoveryPolicy(max_failovers=2)
        assert a.policy_hash() == b.policy_hash()
        assert a.policy_hash() != c.policy_hash()
        assert len(a.policy_hash()) == 12

    def test_describe_mentions_hash_and_fallback(self):
        policy = RecoveryPolicy(fallback_algorithm="ring")
        text = policy.describe()
        assert policy.policy_hash() in text
        assert "ring" in text


class TestAsManager:
    def test_none_passes_through(self):
        assert as_manager(None) is None

    def test_true_builds_default_manager(self):
        manager = as_manager(True)
        assert isinstance(manager, RecoveryManager)
        assert manager.policy == RecoveryPolicy()

    def test_policy_wrapped(self):
        policy = RecoveryPolicy(max_failovers=2)
        assert as_manager(policy).policy is policy

    def test_disabled_policy_normalises_to_none(self):
        assert as_manager(RecoveryPolicy(enabled=False)) is None
        manager = RecoveryManager(RecoveryPolicy(enabled=False))
        assert as_manager(manager) is None

    def test_manager_passes_through(self):
        manager = RecoveryManager()
        assert as_manager(manager) is manager

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError, match="recovery must be"):
            as_manager("yes please")
