"""ULFM-style primitives on Comm: revoke / shrink / agree."""

import numpy as np
import pytest

from repro.errors import CommRevokedError, MPIError
from repro.machine.clusters import cluster_b
from repro.mpi.runtime import run_job
from repro.payload import SUM, make_payload


def test_revoke_poisons_collectives_and_p2p():
    def fn(comm):
        comm.revoke()
        outcomes = []
        try:
            yield from comm.allreduce(
                make_payload(4, data=np.ones(4)), SUM
            )
        except CommRevokedError as err:
            outcomes.append("collective")
            assert "revoked" in str(err)
        try:
            comm.isend(b"x", (comm.rank + 1) % comm.size, tag=9)
        except CommRevokedError:
            outcomes.append("isend")
        try:
            comm.irecv((comm.rank - 1) % comm.size, tag=9)
        except CommRevokedError:
            outcomes.append("irecv")
        return outcomes

    job = run_job(cluster_b(2), 4, fn, ppn=2)
    assert all(v == ["collective", "isend", "irecv"] for v in job.values)


def test_revoke_by_one_rank_is_visible_to_all():
    def fn(comm):
        if comm.rank == 0:
            comm.revoke()
        # Everyone advances simulated time, then observes the flag.
        yield comm.sim.timeout(1e-5)
        return comm.group.revoked

    job = run_job(cluster_b(2), 4, fn, ppn=2)
    assert job.values == [True, True, True, True]


def test_shrink_yields_working_communicator_with_fresh_context():
    def fn(comm):
        comm.revoke()
        new_comm = yield from comm.shrink()
        # The revoked communicator still refuses work...
        with pytest.raises(CommRevokedError):
            new_comm_unused = yield from comm.allreduce(
                make_payload(4, data=np.ones(4)), SUM
            )
        # ...but the shrunk one is fully operational.
        result = yield from new_comm.allreduce(
            make_payload(4, data=np.full(4, float(new_comm.rank))), SUM
        )
        return (
            new_comm.group.context,
            new_comm.size,
            list(result.array),
        )

    job = run_job(cluster_b(2), 4, fn, ppn=2)
    contexts = {v[0] for v in job.values}
    assert contexts != {0} and len(contexts) == 1
    expected = [6.0] * 4  # 0+1+2+3
    assert all(v[1] == 4 and v[2] == expected for v in job.values)


def test_consecutive_shrinks_get_distinct_contexts():
    def fn(comm):
        first = yield from comm.shrink()
        second = yield from comm.shrink()
        return (first.group.context, second.group.context)

    job = run_job(cluster_b(2), 4, fn, ppn=2)
    firsts = {v[0] for v in job.values}
    seconds = {v[1] for v in job.values}
    assert len(firsts) == 1 and len(seconds) == 1
    assert firsts != seconds


class TestAgree:
    @staticmethod
    def run(op, values_by_rank):
        def fn(comm):
            agreed = yield from comm.agree(values_by_rank[comm.rank], op=op)
            return agreed

        return run_job(cluster_b(2), 4, fn, ppn=2).values

    def test_min(self):
        assert self.run("min", [7, 3, 9, 5]) == [3, 3, 3, 3]

    def test_max(self):
        assert self.run("max", [7, 3, 9, 5]) == [9, 9, 9, 9]

    def test_and(self):
        assert self.run("and", [True, True, False, True]) == [False] * 4
        assert self.run("and", [True, True, True, True]) == [True] * 4

    def test_unknown_op_rejected(self):
        def fn(comm):
            agreed = yield from comm.agree(1, op="xor")
            return agreed

        with pytest.raises(MPIError, match="agree"):
            run_job(cluster_b(2), 4, fn, ppn=2)
