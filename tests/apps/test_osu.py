"""Tests for the OSU microbenchmark equivalents."""

import pytest

from repro.apps.osu import multi_pair_bandwidth, relative_throughput
from repro.errors import ReproError
from repro.machine.clusters import cluster_a, cluster_b, cluster_c


class TestMultiPairBandwidth:
    def test_positive_bandwidth(self):
        bw = multi_pair_bandwidth(cluster_b(2), pairs=1, nbytes=4096)
        assert bw > 0

    def test_aggregate_grows_with_pairs_on_ib(self):
        one = multi_pair_bandwidth(cluster_b(2), pairs=1, nbytes=65536)
        four = multi_pair_bandwidth(cluster_b(2), pairs=4, nbytes=65536)
        assert four > 3.0 * one

    def test_intra_node_placement(self):
        bw = multi_pair_bandwidth(cluster_b(1), pairs=4, nbytes=4096,
                                  intra_node=True)
        assert bw > 0

    def test_bandwidth_bounded_by_nic(self):
        config = cluster_c(2)
        bw = multi_pair_bandwidth(config, pairs=8, nbytes=1 << 20)
        assert bw <= config.fabric.nic_bandwidth() * 1.05

    def test_too_many_pairs_rejected(self):
        with pytest.raises(ReproError):
            multi_pair_bandwidth(cluster_b(2), pairs=64, nbytes=64)

    def test_zero_pairs_rejected(self):
        with pytest.raises(ReproError):
            multi_pair_bandwidth(cluster_b(2), pairs=0, nbytes=64)

    def test_window_size_does_not_change_steady_state_much(self):
        small = multi_pair_bandwidth(cluster_b(2), pairs=2, nbytes=65536,
                                     window=8)
        large = multi_pair_bandwidth(cluster_b(2), pairs=2, nbytes=65536,
                                     window=32)
        assert large == pytest.approx(small, rel=0.35)


class TestRelativeThroughput:
    def test_one_pair_is_baseline(self):
        data = relative_throughput(cluster_b(2), [1, 2], [4096])
        assert data[4096][1] == pytest.approx(1.0)
        assert data[4096][2] > 1.0

    def test_omnipath_zone_c_flat(self):
        data = relative_throughput(cluster_c(2), [2, 8], [1 << 20])
        assert data[1 << 20][8] < 2.0

    def test_shm_scales(self):
        data = relative_throughput(cluster_a(2), [2, 8], [16384],
                                   intra_node=True)
        assert data[16384][8] > 5.0


class TestPingPong:
    def test_latency_positive_and_grows_with_size(self):
        from repro.apps.osu import pingpong_latency
        small = pingpong_latency(cluster_b(2), 8)
        large = pingpong_latency(cluster_b(2), 1 << 20)
        assert 0 < small < large

    def test_intra_node_faster_than_inter(self):
        from repro.apps.osu import pingpong_latency
        inter = pingpong_latency(cluster_b(2), 64)
        intra = pingpong_latency(cluster_b(1), 64, inter_node=False)
        assert intra < inter


class TestStreamingBandwidth:
    def test_bw_approaches_nic_for_large_messages(self):
        from repro.apps.osu import unidirectional_bandwidth
        config = cluster_c(2)  # one OPA process can saturate the NIC
        bw = unidirectional_bandwidth(config, 1 << 20)
        assert bw > 0.7 * config.fabric.nic_bandwidth()

    def test_bidirectional_roughly_doubles(self):
        from repro.apps.osu import unidirectional_bandwidth
        config = cluster_c(2)
        uni = unidirectional_bandwidth(config, 1 << 20)
        bi = unidirectional_bandwidth(config, 1 << 20, bidirectional=True)
        assert bi > 1.5 * uni

    def test_small_messages_rate_bound(self):
        from repro.apps.osu import unidirectional_bandwidth
        config = cluster_c(2)
        bw = unidirectional_bandwidth(config, 64)
        # 64B at ~1.6M msg/s per proc is far from line rate.
        assert bw < 0.05 * config.fabric.nic_bandwidth()


class TestCollectiveLatency:
    def test_allreduce_matches_harness(self):
        from repro.apps.osu import osu_collective_latency
        from repro.bench.harness import allreduce_latency
        via_osu = osu_collective_latency(
            cluster_b(4), "allreduce", 4096, nranks=16, ppn=4,
            algorithm="recursive_doubling",
        )
        via_harness = allreduce_latency(
            cluster_b(4), "recursive_doubling", 4096, ppn=4
        )
        assert via_osu == pytest.approx(via_harness, rel=0.05)

    def test_reduce_cheaper_than_allreduce(self):
        from repro.apps.osu import osu_collective_latency
        red = osu_collective_latency(
            cluster_b(4), "reduce", 65536, nranks=16, ppn=4,
            algorithm="binomial",
        )
        allred = osu_collective_latency(
            cluster_b(4), "allreduce", 65536, nranks=16, ppn=4,
            algorithm="reduce_bcast",
        )
        assert red < allred

    def test_unknown_kind_rejected(self):
        from repro.apps.osu import osu_collective_latency
        with pytest.raises(ReproError):
            osu_collective_latency(
                cluster_b(2), "alltoall", 64, nranks=4, ppn=2
            )

    def test_dpml_bcast_beats_binomial_for_large(self):
        from repro.apps.osu import osu_collective_latency
        binom = osu_collective_latency(
            cluster_b(8), "bcast", 1 << 20, nranks=64, ppn=8,
            algorithm="binomial",
        )
        dpml = osu_collective_latency(
            cluster_b(8), "bcast", 1 << 20, nranks=64, ppn=8,
            algorithm="dpml",
        )
        assert dpml < binom
