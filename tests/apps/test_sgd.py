"""Tests for the data-parallel SGD kernel."""

import pytest

from repro.apps.sgd import run_sgd
from repro.machine.clusters import cluster_b, cluster_c


class TestDataMode:
    def test_replicas_stay_identical(self):
        res = run_sgd(cluster_b(2), nranks=8, ppn=4, steps=10)
        assert res.replicas_consistent

    def test_loss_decreases(self):
        res = run_sgd(cluster_b(2), nranks=8, ppn=4, steps=30)
        assert res.losses[-1] < 0.3 * res.losses[0]

    @pytest.mark.parametrize(
        "algorithm", ["recursive_doubling", "dpml", "mvapich2"]
    )
    def test_any_allreduce_trains_identically(self, algorithm):
        res = run_sgd(
            cluster_b(2), nranks=4, ppn=2, steps=8,
            allreduce_algorithm=algorithm,
        )
        ref = run_sgd(
            cluster_b(2), nranks=4, ppn=2, steps=8,
            allreduce_algorithm="ring",
        )
        # The trained model is a function of the data only — not of the
        # (correct) allreduce algorithm used.
        assert res.losses == pytest.approx(ref.losses, rel=1e-9)

    def test_more_ranks_more_data_better_fit(self):
        small = run_sgd(cluster_b(2), nranks=2, ppn=1, steps=30, seed=5)
        large = run_sgd(cluster_b(2), nranks=8, ppn=4, steps=30, seed=5)
        assert small.replicas_consistent and large.replicas_consistent
        # Not asserting ordering of losses (stochastic), only sanity.
        assert large.losses[-1] < large.losses[0]

    def test_bucketing_does_not_change_results(self):
        fine = run_sgd(cluster_b(2), nranks=4, ppn=2, steps=6, bucket_bytes=256)
        coarse = run_sgd(cluster_b(2), nranks=4, ppn=2, steps=6,
                         bucket_bytes=1 << 20)
        assert fine.losses == pytest.approx(coarse.losses, rel=1e-12)


class TestSymbolicMode:
    def test_requires_parameter_count(self):
        with pytest.raises(ValueError):
            run_sgd(cluster_b(2), nranks=4, ppn=2, data_mode=False)

    def test_comm_time_scales_with_model_size(self):
        small = run_sgd(
            cluster_c(4), nranks=16, ppn=4, steps=2, data_mode=False,
            symbolic_parameters=100_000,
        )
        large = run_sgd(
            cluster_c(4), nranks=16, ppn=4, steps=2, data_mode=False,
            symbolic_parameters=2_000_000,
        )
        assert large.allreduce_time > 5 * small.allreduce_time

    def test_no_losses_reported(self):
        res = run_sgd(
            cluster_c(2), nranks=8, ppn=4, steps=2, data_mode=False,
            symbolic_parameters=10_000,
        )
        assert res.losses is None
        assert res.replicas_consistent is None
        assert res.allreduce_time > 0
