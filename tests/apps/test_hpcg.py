"""Tests for the HPCG-like CG kernel."""

import numpy as np
import pytest
import scipy.sparse
import scipy.sparse.linalg

from repro.apps.hpcg import _laplacian_apply, run_hpcg
from repro.errors import ConfigError
from repro.machine.clusters import cluster_a, cluster_b


def reference_laplacian(nz, ny, nx):
    """Assembled 7-point Laplacian with Dirichlet boundaries."""

    def idx(z, y, x):
        return (z * ny + y) * nx + x

    n = nx * ny * nz
    mat = scipy.sparse.lil_matrix((n, n))
    for z in range(nz):
        for y in range(ny):
            for x in range(nx):
                i = idx(z, y, x)
                mat[i, i] = 6.0
                for dz, dy, dx in [(-1, 0, 0), (1, 0, 0), (0, -1, 0),
                                   (0, 1, 0), (0, 0, -1), (0, 0, 1)]:
                    zz, yy, xx = z + dz, y + dy, x + dx
                    if 0 <= zz < nz and 0 <= yy < ny and 0 <= xx < nx:
                        mat[i, idx(zz, yy, xx)] = -1.0
    return mat.tocsr()


class TestStencil:
    def test_matches_assembled_matrix(self):
        nz, ny, nx = 4, 3, 5
        rng = np.random.default_rng(0)
        x = rng.random((nz, ny, nx))
        zero = np.zeros((ny, nx))
        y = _laplacian_apply(x, zero, zero)
        ref = reference_laplacian(nz, ny, nx) @ x.ravel()
        np.testing.assert_allclose(y.ravel(), ref, rtol=1e-12)

    def test_halo_planes_contribute(self):
        x = np.ones((2, 2, 2))
        lo = np.full((2, 2), 5.0)
        hi = np.zeros((2, 2))
        y = _laplacian_apply(x, lo, hi)
        # The z=0 plane sees the lo halo: 6*1 - 5 - (in-volume neighbours)
        assert y[0, 0, 0] == 6.0 - 5.0 - 1.0 - 1.0 - 1.0


class TestDataModeSolve:
    def test_cg_converges_to_true_solution(self):
        nz, ny, nx = 3, 4, 4
        nranks = 4
        res = run_hpcg(
            cluster_b(2),
            nranks=nranks,
            ppn=2,
            local_grid=(nz, ny, nx),
            iterations=500,
            data_mode=True,
            allreduce_algorithm="recursive_doubling",
        )
        assert res.converged
        assert res.residual < 1e-8
        assert res.iterations < 500

    @pytest.mark.parametrize("algorithm", ["dpml", "rabenseifner", "mvapich2"])
    def test_cg_converges_with_any_allreduce(self, algorithm):
        res = run_hpcg(
            cluster_b(2),
            nranks=4,
            ppn=2,
            local_grid=(2, 3, 3),
            iterations=300,
            data_mode=True,
            allreduce_algorithm=algorithm,
        )
        assert res.converged

    def test_sharp_ddot_converges_on_cluster_a(self):
        res = run_hpcg(
            cluster_a(2),
            nranks=4,
            ppn=2,
            local_grid=(2, 3, 3),
            iterations=300,
            data_mode=True,
            allreduce_algorithm="sharp_socket_leader",
        )
        assert res.converged

    def test_single_rank_solve(self):
        res = run_hpcg(
            cluster_b(1),
            nranks=1,
            ppn=1,
            local_grid=(3, 3, 3),
            iterations=200,
            data_mode=True,
        )
        assert res.converged


class TestSymbolicMode:
    def test_reports_positive_times(self):
        res = run_hpcg(cluster_a(2), nranks=8, ppn=4, iterations=5)
        assert res.ddot_time > 0
        assert res.halo_time > 0
        assert res.total_time > res.ddot_time
        assert res.residual is None

    def test_ddot_time_grows_with_scale(self):
        small = run_hpcg(cluster_a(2), nranks=8, ppn=4, iterations=5,
                         allreduce_algorithm="mvapich2")
        large = run_hpcg(cluster_a(8), nranks=32, ppn=4, iterations=5,
                         allreduce_algorithm="mvapich2")
        assert large.ddot_time > small.ddot_time

    def test_sharp_flattens_ddot_scaling(self):
        small = run_hpcg(cluster_a(2), nranks=8, ppn=4, iterations=5,
                         allreduce_algorithm="sharp_socket_leader")
        large = run_hpcg(cluster_a(8), nranks=32, ppn=4, iterations=5,
                         allreduce_algorithm="sharp_socket_leader")
        assert large.ddot_time < 1.5 * small.ddot_time

    def test_invalid_grid_rejected(self):
        with pytest.raises(ConfigError):
            run_hpcg(cluster_b(2), nranks=4, ppn=2, local_grid=(0, 2, 2))
