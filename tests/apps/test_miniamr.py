"""Tests for the miniAMR-like refinement kernel."""

import pytest

from repro.apps.miniamr import run_miniamr
from repro.machine.clusters import cluster_b, cluster_c


class TestDataMode:
    def test_runs_and_agrees(self):
        res = run_miniamr(cluster_c(2), nranks=8, ppn=4, steps=4, data_mode=True)
        assert res.steps == 4
        assert res.final_blocks > 0
        assert 0 <= res.max_level <= 4

    def test_mesh_grows_under_refinement(self):
        res = run_miniamr(
            cluster_c(2), nranks=8, ppn=4, steps=6, data_mode=True,
            refine_fraction=0.9, initial_blocks=4,
        )
        assert res.final_blocks > 4 * 8  # grew beyond the initial mesh

    def test_no_refinement_keeps_levels_flat(self):
        res = run_miniamr(
            cluster_c(2), nranks=8, ppn=4, steps=4, data_mode=True,
            refine_fraction=0.0,
        )
        assert res.max_level == 0
        assert res.final_blocks == 8 * 8  # initial_blocks * nranks

    def test_deterministic_given_seed(self):
        a = run_miniamr(cluster_c(2), nranks=8, ppn=4, steps=4,
                        data_mode=True, seed=7)
        b = run_miniamr(cluster_c(2), nranks=8, ppn=4, steps=4,
                        data_mode=True, seed=7)
        assert a.final_blocks == b.final_blocks
        assert a.refine_time == b.refine_time


class TestSymbolicMode:
    def test_refine_time_positive_and_below_total(self):
        res = run_miniamr(cluster_c(2), nranks=8, ppn=4, steps=4)
        assert 0 < res.refine_time <= res.total_time

    def test_refine_time_grows_with_job_size(self):
        small = run_miniamr(cluster_c(2), nranks=16, ppn=8, steps=4,
                            initial_blocks=32)
        large = run_miniamr(cluster_c(8), nranks=64, ppn=8, steps=4,
                            initial_blocks=32)
        assert large.refine_time > small.refine_time

    @pytest.mark.parametrize("algorithm", ["mvapich2", "intel_mpi", "dpml_tuned"])
    def test_all_library_stacks_run(self, algorithm):
        res = run_miniamr(
            cluster_c(2), nranks=8, ppn=4, steps=3,
            allreduce_algorithm=algorithm,
        )
        assert res.refine_time > 0

    def test_dpml_beats_mvapich2_at_scale(self):
        mv = run_miniamr(cluster_c(8), nranks=8 * 28, ppn=28, steps=4,
                         initial_blocks=64, allreduce_algorithm="mvapich2")
        dp = run_miniamr(cluster_c(8), nranks=8 * 28, ppn=28, steps=4,
                         initial_blocks=64, allreduce_algorithm="dpml_tuned")
        assert dp.refine_time < mv.refine_time
