"""FaultPlan schema: validation, JSON round-trip, hashing, CLI."""

import json

import pytest

from repro.errors import FaultError
from repro.faults import (
    ARRIVAL_PATTERNS,
    FAULT_KINDS,
    ArrivalSkew,
    FaultPlan,
    LinkDegrade,
    LinkOutage,
    NodeSlowdown,
    Straggler,
)
from repro.faults.cli import main as faults_cli


def full_plan() -> FaultPlan:
    return FaultPlan(
        faults=(
            Straggler(rank=1, factor=3.0, start=0.0, duration=1e-3),
            ArrivalSkew(magnitude=1e-4, pattern="exponential"),
            LinkDegrade(
                src=0, dst=1, latency_factor=2.0, bandwidth_factor=0.5,
                duration=1e-2,
            ),
            LinkOutage(src=0, dst=1, start=0.0, duration=5e-5),
            NodeSlowdown(node=0, factor=2.0, duration=1e-3),
        )
    )


class TestValidation:
    def test_straggler_rejects_speedup_factor(self):
        with pytest.raises(FaultError):
            Straggler(rank=0, factor=0.5)

    def test_straggler_rejects_negative_rank(self):
        with pytest.raises(FaultError):
            Straggler(rank=-1, factor=2.0)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultError):
            Straggler(rank=0, factor=2.0, start=-1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(FaultError):
            NodeSlowdown(node=0, factor=2.0, duration=0.0)

    def test_skew_rejects_unknown_pattern(self):
        with pytest.raises(FaultError):
            ArrivalSkew(magnitude=1e-4, pattern="bogus")

    def test_skew_rank_only_for_single(self):
        with pytest.raises(FaultError):
            ArrivalSkew(magnitude=1e-4, pattern="sorted", rank=3)
        ArrivalSkew(magnitude=1e-4, pattern="single", rank=3)  # fine

    def test_degrade_must_degrade_something(self):
        with pytest.raises(FaultError):
            LinkDegrade(src=0, dst=1)

    def test_degrade_bandwidth_factor_range(self):
        with pytest.raises(FaultError):
            LinkDegrade(src=0, dst=1, bandwidth_factor=1.5)
        with pytest.raises(FaultError):
            LinkDegrade(src=0, dst=1, bandwidth_factor=0.0)

    def test_degrade_latency_factor_floor(self):
        with pytest.raises(FaultError):
            LinkDegrade(src=0, dst=1, latency_factor=0.5)

    def test_plan_rejects_non_fault_entries(self):
        with pytest.raises(FaultError):
            FaultPlan(faults=("not a fault",))

    def test_plan_rejects_bad_retry_policy(self):
        with pytest.raises(FaultError):
            FaultPlan(retry_limit=-1)
        with pytest.raises(FaultError):
            FaultPlan(backoff_base=0.0)
        with pytest.raises(FaultError):
            FaultPlan(backoff_base=1e-4, backoff_cap=1e-6)


class TestSerialisation:
    def test_json_round_trip(self):
        plan = full_plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_round_trip_preserves_hash(self):
        plan = full_plan()
        assert FaultPlan.from_json(plan.to_json()).plan_hash() == plan.plan_hash()

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultPlan.from_dict({"faults": [{"kind": "meteor-strike"}]})

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultError, match="unknown field"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "straggler", "rank": 0, "factor": 2.0,
                             "severity": 9}]}
            )

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(FaultError, match="unknown field"):
            FaultPlan.from_dict({"faults": [], "rety_limit": 3})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_kind_vocabulary_is_closed(self):
        assert set(FAULT_KINDS) == {
            "straggler", "arrival-skew", "link-degrade", "link-outage",
            "node-slowdown",
        }
        for kind in FAULT_KINDS:
            assert FAULT_KINDS[kind].kind == kind

    def test_hash_differs_for_different_plans(self):
        a = FaultPlan(faults=(Straggler(rank=0, factor=2.0),))
        b = FaultPlan(faults=(Straggler(rank=1, factor=2.0),))
        assert a.plan_hash() != b.plan_hash()

    def test_describe_mentions_every_fault(self):
        text = full_plan().describe()
        for kind in FAULT_KINDS:
            assert kind in text


class TestIntrospection:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert len(plan) == 0
        assert plan.max_rank_referenced() is None
        assert plan.max_node_referenced() is None

    def test_of_kind(self):
        plan = full_plan()
        assert len(plan.of_kind("link-outage")) == 1
        with pytest.raises(FaultError):
            plan.of_kind("nope")

    def test_max_references(self):
        plan = full_plan()
        assert plan.max_rank_referenced() == 1
        assert plan.max_node_referenced() == 1

    def test_arrival_patterns_exported(self):
        assert "sorted" in ARRIVAL_PATTERNS
        assert "exponential" in ARRIVAL_PATTERNS


class TestCli:
    def test_validate_describe_sample(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        path.write_text(full_plan().to_json())
        assert faults_cli(["validate", str(path)]) == 0
        assert faults_cli(["describe", str(path)]) == 0
        assert faults_cli(
            ["sample", str(path), "--nranks", "8", "--ppn", "4", "--seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "rank   7" in out
        assert "DOWN" in out  # the outage window is visible at t=0

    def test_validate_rejects_bad_plan(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"faults": [{"kind": "meteor-strike"}]}')
        with pytest.raises(SystemExit):
            faults_cli(["validate", str(path)])

    def test_validate_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            faults_cli(["validate", str(tmp_path / "nope.json")])

    def test_example_emits_valid_plans(self, capsys):
        assert faults_cli(["example"]) == 0
        plan = FaultPlan.from_json(capsys.readouterr().out)
        assert len(plan) == len(FAULT_KINDS)
        assert faults_cli(["example", "link-outage"]) == 0
        plan = FaultPlan.from_json(capsys.readouterr().out)
        assert len(plan) == 1

    def test_example_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            faults_cli(["example", "meteor-strike"])

    def test_sample_layout_mismatch(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            FaultPlan(faults=(Straggler(rank=64, factor=2.0),)).to_json()
        )
        with pytest.raises(SystemExit):
            faults_cli(["sample", str(path), "--nranks", "4"])
