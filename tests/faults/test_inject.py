"""FaultInjector realisation: determinism, windows, counters, reset."""

import math

import pytest

from repro.errors import FaultError
from repro.faults import (
    ArrivalSkew,
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    LinkOutage,
    NodeSlowdown,
    Straggler,
)


def node_of_ppn(ppn):
    return lambda rank: rank // ppn


def realise(plan, nranks=8, ppn=4, seed=0):
    return FaultInjector(plan, nranks, node_of_ppn(ppn), seed=seed)


class TestRealisation:
    def test_same_plan_seed_same_schedule(self):
        plan = FaultPlan(
            faults=(ArrivalSkew(magnitude=1e-4, pattern="random"),)
        )
        a, b = realise(plan, seed=5), realise(plan, seed=5)
        assert [a.arrival_delay(r) for r in range(8)] == [
            b.arrival_delay(r) for r in range(8)
        ]

    def test_different_seeds_differ(self):
        plan = FaultPlan(
            faults=(ArrivalSkew(magnitude=1e-4, pattern="exponential"),)
        )
        a, b = realise(plan, seed=1), realise(plan, seed=2)
        assert [a.arrival_delay(r) for r in range(8)] != [
            b.arrival_delay(r) for r in range(8)
        ]

    def test_sorted_pattern_is_linear_ramp(self):
        inj = realise(
            FaultPlan(faults=(ArrivalSkew(magnitude=7e-4, pattern="sorted"),))
        )
        delays = [inj.arrival_delay(r) for r in range(8)]
        assert delays[0] == 0.0
        assert delays[-1] == pytest.approx(7e-4)
        assert delays == sorted(delays)

    def test_reverse_pattern_mirrors_sorted(self):
        mk = lambda pat: realise(
            FaultPlan(faults=(ArrivalSkew(magnitude=7e-4, pattern=pat),))
        )
        fwd = [mk("sorted").arrival_delay(r) for r in range(8)]
        rev = [mk("reverse").arrival_delay(r) for r in range(8)]
        assert rev == fwd[::-1]

    def test_single_pattern_defaults_to_last_rank(self):
        inj = realise(
            FaultPlan(faults=(ArrivalSkew(magnitude=3e-4, pattern="single"),))
        )
        delays = [inj.arrival_delay(r) for r in range(8)]
        assert delays == [0.0] * 7 + [3e-4]

    def test_single_pattern_with_explicit_rank(self):
        inj = realise(
            FaultPlan(
                faults=(
                    ArrivalSkew(magnitude=3e-4, pattern="single", rank=2),
                )
            )
        )
        assert inj.arrival_delay(2) == 3e-4
        assert inj.arrival_delay(7) == 0.0

    def test_multiple_skews_sum(self):
        inj = realise(
            FaultPlan(
                faults=(
                    ArrivalSkew(magnitude=1e-4, pattern="single"),
                    ArrivalSkew(magnitude=2e-4, pattern="single"),
                )
            )
        )
        assert inj.arrival_delay(7) == pytest.approx(3e-4)

    def test_zero_magnitude_draws_nothing(self):
        # A zero-magnitude random skew must not consume the RNG stream,
        # so adding it leaves a following stochastic fault unchanged.
        tail = ArrivalSkew(magnitude=1e-4, pattern="random")
        plain = realise(FaultPlan(faults=(tail,)), seed=9)
        padded = realise(
            FaultPlan(
                faults=(ArrivalSkew(magnitude=0.0, pattern="random"), tail)
            ),
            seed=9,
        )
        assert [plain.arrival_delay(r) for r in range(8)] == [
            padded.arrival_delay(r) for r in range(8)
        ]

    def test_plan_referencing_missing_rank_rejected(self):
        plan = FaultPlan(faults=(Straggler(rank=64, factor=2.0),))
        with pytest.raises(FaultError, match="rank 64"):
            realise(plan, nranks=8)

    def test_plan_referencing_missing_node_rejected(self):
        plan = FaultPlan(faults=(NodeSlowdown(node=9, factor=2.0),))
        with pytest.raises(FaultError, match="node 9"):
            realise(plan, nranks=8, ppn=4)

    def test_nonpositive_nranks_rejected(self):
        with pytest.raises(FaultError):
            FaultInjector(FaultPlan(), 0, lambda r: 0)


class TestWindows:
    def test_straggler_window(self):
        inj = realise(
            FaultPlan(
                faults=(Straggler(rank=1, factor=4.0, start=1e-3,
                                  duration=1e-3),)
            )
        )
        assert inj.compute_factor(1, 0.0) == 1.0  # before
        assert inj.compute_factor(1, 1.5e-3) == 4.0  # inside
        assert inj.compute_factor(1, 2e-3) == 1.0  # half-open end
        assert inj.compute_factor(0, 1.5e-3) == 1.0  # other rank

    def test_open_ended_straggler(self):
        inj = realise(
            FaultPlan(faults=(Straggler(rank=0, factor=2.0),))
        )
        assert inj.compute_factor(0, 1e9) == 2.0

    def test_node_slowdown_hits_compute_and_copy(self):
        inj = realise(
            FaultPlan(faults=(NodeSlowdown(node=1, factor=3.0),)), ppn=4
        )
        for rank in range(4, 8):  # node 1
            assert inj.compute_factor(rank, 0.0) == 3.0
            assert inj.copy_factor(rank, 0.0) == 3.0
        for rank in range(4):  # node 0
            assert inj.compute_factor(rank, 0.0) == 1.0
            assert inj.copy_factor(rank, 0.0) == 1.0

    def test_straggler_and_node_slowdown_compose(self):
        inj = realise(
            FaultPlan(
                faults=(
                    Straggler(rank=0, factor=2.0),
                    NodeSlowdown(node=0, factor=3.0),
                )
            ),
            ppn=4,
        )
        assert inj.compute_factor(0, 0.0) == 6.0
        assert inj.copy_factor(0, 0.0) == 3.0

    def test_link_degrade_directed_and_windowed(self):
        inj = realise(
            FaultPlan(
                faults=(
                    LinkDegrade(src=0, dst=1, latency_factor=2.0,
                                bandwidth_factor=0.5, start=0.0,
                                duration=1e-3),
                )
            )
        )
        assert inj.link_factors(0, 1, 0.0) == (2.0, 2.0)
        assert inj.link_factors(1, 0, 0.0) == (1.0, 1.0)  # directed
        assert inj.link_factors(0, 1, 2e-3) == (1.0, 1.0)  # expired

    def test_link_degrade_wildcards(self):
        inj = realise(
            FaultPlan(faults=(LinkDegrade(dst=1, latency_factor=3.0),))
        )
        assert inj.link_factors(0, 1, 0.0) == (3.0, 1.0)
        assert inj.link_factors(1, 0, 0.0) == (1.0, 1.0)

    def test_outage_window_and_permanence(self):
        inj = realise(
            FaultPlan(
                faults=(
                    LinkOutage(src=0, dst=1, start=0.0, duration=5e-5),
                    LinkOutage(src=1, dst=0),
                )
            )
        )
        assert inj.link_blocked_until(0, 1, 0.0) == 5e-5
        assert inj.link_blocked_until(0, 1, 6e-5) is None  # healed
        assert inj.link_blocked_until(1, 0, 1e9) == math.inf  # permanent

    def test_fast_path_flags(self):
        inj = realise(FaultPlan())
        assert not inj.has_compute_faults
        assert not inj.has_link_faults
        assert not inj.has_arrival_skew
        full = realise(
            FaultPlan(
                faults=(
                    Straggler(rank=0, factor=2.0),
                    ArrivalSkew(magnitude=1e-5),
                    LinkOutage(src=0, dst=1, duration=1e-5),
                )
            )
        )
        assert full.has_compute_faults
        assert full.has_link_outage and full.has_link_faults
        assert full.has_arrival_skew
        assert not full.has_link_degrade


class TestCountersAndReset:
    def test_backoff_is_capped_exponential(self):
        plan = FaultPlan(retry_limit=8, backoff_base=1e-6, backoff_cap=1e-5)
        inj = realise(plan)
        assert inj.backoff(0) == 1e-6
        assert inj.backoff(1) == 2e-6
        assert inj.backoff(7) == 1e-5  # capped

    def test_counters_snapshot(self):
        inj = realise(
            FaultPlan(faults=(ArrivalSkew(magnitude=1e-4, pattern="random"),))
        )
        inj.count_retry(3)
        inj.count_retry(3)
        inj.count_exhausted(5)
        c = inj.counters()
        assert c["retries"][3] == 2 and sum(c["retries"]) == 2
        assert c["exhausted"][5] == 1
        assert c["plan"] == inj.plan.plan_hash()
        assert len(c["arrival_delays"]) == 8

    def test_reset_rezeroes_and_rerealises(self):
        inj = realise(
            FaultPlan(faults=(ArrivalSkew(magnitude=1e-4, pattern="random"),)),
            seed=4,
        )
        before = [inj.arrival_delay(r) for r in range(8)]
        inj.count_retry(0)
        inj.reset()
        assert sum(inj.counters()["retries"]) == 0
        assert [inj.arrival_delay(r) for r in range(8)] == before

    def test_for_machine_uses_placement(self):
        from repro.machine.clusters import cluster_b
        from repro.machine.machine import Machine

        machine = Machine(cluster_b(2), 8, 4)
        inj = FaultInjector.for_machine(
            FaultPlan(faults=(NodeSlowdown(node=1, factor=2.0),)), machine
        )
        assert inj.compute_factor(7, 0.0) == 2.0  # rank 7 lives on node 1
        assert inj.compute_factor(0, 0.0) == 1.0
