"""Faults through the whole stack: runtime, transport, sessions, specs.

The golden test here is the subsystem's acceptance criterion: a
``(FaultPlan, seed)`` pair must replay bit-identically across fresh
machines, reused sessions, and both event-kernel modes (fast and
compat), while faulted allreduces stay element-wise correct under a
strict sanitizer.
"""

import numpy as np
import pytest

from repro.check.sanitizer import Sanitizer
from repro.errors import MPIError
from repro.faults import (
    ArrivalSkew,
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    LinkOutage,
    NodeSlowdown,
    Straggler,
)
from repro.machine.clusters import cluster_b
from repro.mpi.runtime import SimSession, run_job
from repro.payload import SUM, make_payload
from repro.sim import Simulator

#: A plan exercising every fault kind that lets the job complete.
MIXED_PLAN = FaultPlan(
    faults=(
        Straggler(rank=1, factor=5.0),
        NodeSlowdown(node=1, factor=2.0, duration=2e-4),
        ArrivalSkew(magnitude=2e-4, pattern="exponential"),
        LinkDegrade(src=0, dst=1, latency_factor=2.0, bandwidth_factor=0.5),
        LinkOutage(src=1, dst=0, start=1e-5, duration=3e-5),
    )
)


def allreduce_fn(comm, count=8, algorithm=None):
    data = make_payload(count, data=np.full(count, float(comm.rank)))
    result = yield from comm.allreduce(data, SUM, algorithm=algorithm)
    return list(result.array)


def fingerprint(job):
    return (job.values, job.elapsed, job.counters.get("faults"))


class TestGoldenDeterminism:
    def test_fresh_runs_replay_bit_identically(self):
        runs = [
            run_job(
                cluster_b(2), 8, allreduce_fn, ppn=4,
                faults=MIXED_PLAN, fault_seed=3, sanitize=True,
            )
            for _ in range(2)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])

    def test_fast_and_compat_kernels_agree(self):
        fast = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4,
            faults=MIXED_PLAN, fault_seed=3,
        )
        compat = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4,
            sim=Simulator(compat=True), faults=MIXED_PLAN, fault_seed=3,
        )
        # Kernel-internal counters legitimately differ between modes;
        # the simulated outcome must not.
        assert fingerprint(fast) == fingerprint(compat)

    def test_session_reuse_matches_fresh_build(self):
        fresh = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4,
            faults=MIXED_PLAN, fault_seed=3,
        )
        session = SimSession(cluster_b(2), 8, 4)
        injector = FaultInjector.for_machine(
            MIXED_PLAN, session.machine, seed=3
        )
        first = session.run(allreduce_fn, faults=injector)
        second = session.run(allreduce_fn, faults=injector)
        assert fingerprint(first) == fingerprint(fresh)
        assert fingerprint(first) == fingerprint(second)

    def test_faulted_results_correct_under_strict_sanitizer(self):
        job = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4,
            faults=MIXED_PLAN, fault_seed=1, sanitize=True,  # strict
        )
        expected = [float(sum(range(8)))] * 8
        for value in job.values:
            assert value == expected
        assert job.reports == []

    def test_different_fault_seeds_change_the_run(self):
        a = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4,
            faults=MIXED_PLAN, fault_seed=1,
        )
        b = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4,
            faults=MIXED_PLAN, fault_seed=2,
        )
        assert a.elapsed != b.elapsed  # exponential skew resampled
        assert a.values == b.values  # ... but results stay correct


class TestFaultEffects:
    def test_straggler_slows_the_job(self):
        clean = run_job(cluster_b(2), 8, allreduce_fn, ppn=4,
                        kwargs={"count": 4096})
        slow = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4, kwargs={"count": 4096},
            faults=FaultPlan(faults=(Straggler(rank=0, factor=50.0),)),
        )
        assert slow.elapsed > clean.elapsed
        assert slow.values == clean.values

    def test_node_slowdown_slows_the_job(self):
        clean = run_job(cluster_b(2), 8, allreduce_fn, ppn=4,
                        kwargs={"count": 4096})
        slow = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4, kwargs={"count": 4096},
            faults=FaultPlan(faults=(NodeSlowdown(node=0, factor=20.0),)),
        )
        assert slow.elapsed > clean.elapsed

    def test_link_degrade_slows_inter_node_traffic(self):
        clean = run_job(cluster_b(2), 8, allreduce_fn, ppn=4,
                        kwargs={"count": 65536})
        degraded = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4, kwargs={"count": 65536},
            faults=FaultPlan(
                faults=(LinkDegrade(latency_factor=10.0,
                                    bandwidth_factor=0.1),)
            ),
        )
        # Intra-node shm traffic dominates at this size, so the wire
        # penalty shows up diluted — but it must show up.
        assert degraded.elapsed > clean.elapsed * 1.1
        assert degraded.values == clean.values

    def test_arrival_skew_delays_completion(self):
        clean = run_job(cluster_b(2), 8, allreduce_fn, ppn=4)
        skewed = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4,
            faults=FaultPlan(
                faults=(ArrivalSkew(magnitude=1e-3, pattern="single"),)
            ),
        )
        assert skewed.elapsed >= clean.elapsed + 1e-3 * 0.9
        assert skewed.values == clean.values

    def test_fault_free_plan_changes_nothing(self):
        # An empty plan must be byte-for-byte invisible, kernel
        # counters included (the perf-smoke gate depends on this).
        clean = run_job(cluster_b(2), 8, allreduce_fn, ppn=4)
        empty = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4, faults=FaultPlan()
        )
        assert empty.values == clean.values
        assert empty.elapsed == clean.elapsed
        faultless = dict(empty.counters)
        assert faultless.pop("faults")["retries"] == [0] * 8
        assert faultless == clean.counters


class TestOutageRetry:
    def test_transient_outage_survived_with_retries_counted(self):
        job = run_job(
            cluster_b(2), 8, allreduce_fn, ppn=4, sanitize=True,
            faults=FaultPlan(
                faults=(LinkOutage(src=0, dst=1, start=0.0, duration=4e-5),)
            ),
        )
        counters = job.counters["faults"]
        assert sum(counters["retries"]) > 0
        assert sum(counters["exhausted"]) == 0
        assert job.values == [[float(sum(range(8)))] * 8] * 8

    def test_permanent_outage_exhausts_into_mpierror(self):
        sanitizer = Sanitizer(strict=False)
        session = SimSession(cluster_b(2), 8, 4, sanitize=sanitizer)
        injector = FaultInjector.for_machine(
            FaultPlan(faults=(LinkOutage(src=0, dst=1),)), session.machine
        )
        with pytest.raises(MPIError, match="retry"):
            session.run(allreduce_fn, faults=injector)
        assert sum(injector.counters()["exhausted"]) > 0
        report = sanitizer.by_kind("fault-retries-exhausted")[0]
        assert report.details["src_node"] == 0
        assert report.details["dst_node"] == 1
        assert report.details["attempts"] == injector.retry_limit

    def test_retry_limit_zero_fails_immediately(self):
        plan = FaultPlan(
            faults=(LinkOutage(src=0, dst=1, duration=1e-5),), retry_limit=0
        )
        with pytest.raises(MPIError, match="0 retry"):
            run_job(cluster_b(2), 8, allreduce_fn, ppn=4, faults=plan)


class TestSpecIntegration:
    def test_sample_point_runs_with_faults(self):
        from repro.bench.spec import SamplePoint

        plan = FaultPlan(
            faults=(ArrivalSkew(magnitude=1e-4, pattern="sorted"),)
        )
        base = dict(cluster="b", nodes=2, ppn=4, algorithm="dpml",
                    nbytes=4096, iterations=1)
        clean = SamplePoint(**base).run()
        faulted = SamplePoint(**base, faults=plan).run()
        # The OSU-style barrier absorbs the skew from the timed loop,
        # so the per-call latency stays finite and comparable.
        assert faulted > 0 and clean > 0

    def test_executor_runs_faulted_sweep_deterministically(self):
        from repro.bench.executor import SerialExecutor
        from repro.bench.spec import SweepSpec

        spec = SweepSpec(
            name="faulted-tiny", cluster="b", nodes=2, ppn=2,
            sizes=(1024,), algorithms=("dpml", "rabenseifner"),
            iterations=1,
            faults=FaultPlan(faults=(Straggler(rank=0, factor=3.0),)),
        )
        a = SerialExecutor().run(spec)
        b = SerialExecutor().run(spec)
        assert a.ok and b.ok
        assert a.canonical_dict() == b.canonical_dict()

    def test_faults_cli_flag_loads_plan_into_spec_hash(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_cli

        path = tmp_path / "plan.json"
        path.write_text(
            FaultPlan(
                faults=(ArrivalSkew(magnitude=1e-5, pattern="sorted"),)
            ).to_json()
        )
        out = tmp_path / "result.json"
        rc = bench_cli([
            "run", "fig5", "--sizes", "1024", "--faults", str(path),
            "--seed", "7", "--output", str(out), "--canonical",
        ])
        assert rc == 0
        import json

        record = json.loads(out.read_text())
        assert record["spec"]["faults"]["faults"][0]["kind"] == "arrival-skew"
        assert record["spec"]["base_seed"] == 7
        # A fault-free run of the same sweep hashes differently.
        rc = bench_cli([
            "run", "fig5", "--sizes", "1024", "--output", str(out),
            "--canonical",
        ])
        assert rc == 0
        clean = json.loads(out.read_text())
        assert clean["spec_hash"] != record["spec_hash"]
        assert "faults" not in clean["spec"]

    def test_bench_cli_rejects_bad_plan_file(self, tmp_path):
        from repro.bench.cli import main as bench_cli

        bad = tmp_path / "bad.json"
        bad.write_text('{"faults": [{"kind": "meteor-strike"}]}')
        assert bench_cli(["run", "fig5", "--faults", str(bad)]) == 2
        assert bench_cli(
            ["run", "fig5", "--faults", str(tmp_path / "nope.json")]
        ) == 2
