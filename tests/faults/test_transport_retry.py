"""The transport retry loop: typed exhaustion, per-edge telemetry.

Covers the audited ``_await_link`` control flow: every iteration either
returns (link clear), raises the typed
:class:`~repro.errors.TransportError` (budget exhausted on a live
outage), or performs exactly one counted retry followed by one backoff
sleep — and the counters record each of those outcomes per edge.
"""

import numpy as np
import pytest

from repro.errors import MPIError, TransportError
from repro.faults import FaultPlan, LinkOutage
from repro.machine.clusters import cluster_b
from repro.mpi.runtime import run_job
from repro.payload import SUM, make_payload


def allreduce_fn(comm, count=8):
    data = make_payload(count, data=np.full(count, float(comm.rank)))
    result = yield from comm.allreduce(data, SUM)
    return list(result.array)


TRANSIENT = FaultPlan(
    faults=(LinkOutage(src=0, dst=1, start=0.0, duration=2e-5),),
    retry_limit=50,
)

PERMANENT = FaultPlan(
    faults=(LinkOutage(src=0, dst=1, start=0.0, duration=None),),
    retry_limit=4,
)


class TestTypedError:
    def test_permanent_outage_raises_transport_error(self):
        with pytest.raises(TransportError) as info:
            run_job(cluster_b(2), 4, allreduce_fn, ppn=2, faults=PERMANENT)
        err = info.value
        assert err.edge == (0, 1)
        assert err.attempts == PERMANENT.retry_limit
        assert err.sim_time > 0.0
        assert 0 <= err.rank < 4
        assert "4 retry(ies)" in str(err)

    def test_transport_error_is_an_mpi_error(self):
        # Compatibility: older callers catching MPIError keep working.
        with pytest.raises(MPIError, match="retry"):
            run_job(cluster_b(2), 4, allreduce_fn, ppn=2, faults=PERMANENT)

    def test_zero_retry_budget(self):
        plan = FaultPlan(faults=PERMANENT.faults, retry_limit=0)
        with pytest.raises(TransportError) as info:
            run_job(cluster_b(2), 4, allreduce_fn, ppn=2, faults=plan)
        assert info.value.attempts == 0


class TestPerEdgeCounters:
    def test_transient_outage_retries_without_exhaustion(self):
        job = run_job(cluster_b(2), 4, allreduce_fn, ppn=2, faults=TRANSIENT)
        counters = job.counters["faults"]
        edges = counters["edges"]
        assert set(edges) == {"0->1"}
        assert edges["0->1"]["retries"] >= 1
        assert edges["0->1"]["exhausted"] == 0
        assert sum(counters["retries"]) == edges["0->1"]["retries"]

    def test_exhaustion_attributed_to_the_failing_edge(self):
        sink = {}

        def capture(comm):
            try:
                result = yield from allreduce_fn(comm)
                return result
            except TransportError:
                raise

        try:
            run_job(cluster_b(2), 4, capture, ppn=2, faults=PERMANENT)
        except TransportError as err:
            sink["edge"] = err.edge
            sink["attempts"] = err.attempts
        assert sink["edge"] == (0, 1)
        assert sink["attempts"] == 4

    def test_fault_free_counters_keep_historical_shape(self):
        # Plans that never hit a link must not grow the new "edges"
        # key: snapshot consumers diff these dicts byte-for-byte.
        plan = FaultPlan(
            faults=(LinkOutage(src=0, dst=1, start=1.0, duration=1e-6),)
        )
        job = run_job(cluster_b(2), 4, allreduce_fn, ppn=2, faults=plan)
        assert "edges" not in job.counters["faults"]

    def test_edge_counters_are_json_canonical(self):
        import json

        job = run_job(cluster_b(2), 4, allreduce_fn, ppn=2, faults=TRANSIENT)
        text = json.dumps(job.counters["faults"], sort_keys=True)
        again = run_job(cluster_b(2), 4, allreduce_fn, ppn=2, faults=TRANSIENT)
        assert text == json.dumps(again.counters["faults"], sort_keys=True)
