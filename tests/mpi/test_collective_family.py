"""Correctness of the full collective family (reduce, bcast, allgather,
reduce-scatter, gather, scatter) against numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MPIError, TuningError
from repro.machine.clusters import cluster_b
from repro.mpi import run_job
from repro.mpi.collectives.registry import available_collectives
from repro.payload import MAX, SUM, DataPayload, make_payload, split_bounds


def _inputs(nranks, count, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(1, 9, count).astype(np.float64) for _ in range(nranks)]


from tests.conftest import FAMILY_LAYOUTS as LAYOUTS  # (nranks, ppn, nodes)


class TestReduce:
    @pytest.mark.parametrize("algorithm", ["binomial", "knomial", "dpml", "auto"])
    @pytest.mark.parametrize("nranks,ppn,nodes", LAYOUTS)
    def test_reduce_matches_numpy(self, algorithm, nranks, ppn, nodes):
        inputs = _inputs(nranks, 11)
        root = nranks - 1

        def fn(comm):
            data = DataPayload(inputs[comm.rank])
            out = yield from comm.reduce(data, SUM, root=root, algorithm=algorithm)
            return None if out is None else out.array

        job = run_job(cluster_b(nodes), nranks, fn, ppn=ppn)
        np.testing.assert_array_equal(job.values[root], SUM.reduce_stack(inputs))
        for r, v in enumerate(job.values):
            if r != root:
                assert v is None

    @pytest.mark.parametrize("radix", [2, 3, 5, 8])
    def test_knomial_radices(self, radix):
        inputs = _inputs(10, 7)

        def fn(comm):
            out = yield from comm.reduce(
                DataPayload(inputs[comm.rank]), SUM, root=0,
                algorithm="knomial", radix=radix,
            )
            return None if out is None else out.array

        job = run_job(cluster_b(4), 10, fn, ppn=3)
        np.testing.assert_array_equal(job.values[0], SUM.reduce_stack(inputs))

    def test_knomial_bad_radix(self):
        from repro.errors import ConfigError

        def fn(comm):
            with pytest.raises(ConfigError):
                yield from comm.reduce(
                    make_payload(4), SUM, algorithm="knomial", radix=1
                )

        run_job(cluster_b(2), 4, fn, ppn=2)

    def test_ireduce_nonblocking(self):
        inputs = _inputs(6, 5)

        def fn(comm):
            req = comm.ireduce(DataPayload(inputs[comm.rank]), SUM, root=2)
            out = yield from comm.wait(req)
            return None if out is None else out.array

        job = run_job(cluster_b(2), 6, fn, ppn=3)
        np.testing.assert_array_equal(job.values[2], SUM.reduce_stack(inputs))

    def test_reduce_max_with_dpml(self):
        inputs = _inputs(8, 9, seed=3)

        def fn(comm):
            out = yield from comm.reduce(
                DataPayload(inputs[comm.rank]), MAX, root=0,
                algorithm="dpml", leaders=2,
            )
            return None if out is None else out.array

        job = run_job(cluster_b(2), 8, fn, ppn=4)
        np.testing.assert_array_equal(job.values[0], MAX.reduce_stack(inputs))


class TestBcast:
    @pytest.mark.parametrize(
        "algorithm", ["binomial", "knomial", "scatter_ring", "dpml"]
    )
    @pytest.mark.parametrize("nranks,ppn,nodes", LAYOUTS)
    def test_bcast_delivers_everywhere(self, algorithm, nranks, ppn, nodes):
        root = min(1, nranks - 1)
        vector = np.arange(13.0) * 3

        def fn(comm):
            data = DataPayload(vector.copy()) if comm.rank == root else None
            out = yield from comm.bcast(data, root=root, algorithm=algorithm)
            return out.array

        job = run_job(cluster_b(nodes), nranks, fn, ppn=ppn)
        for v in job.values:
            np.testing.assert_array_equal(v, vector)

    def test_bcast_auto_requires_placeholder(self):
        def fn(comm):
            if comm.rank == 0:
                data = make_payload(2048, data=np.zeros(2048))
            else:
                data = None
            if comm.rank != 0:
                with pytest.raises(MPIError, match="placeholder"):
                    yield from comm.bcast(data, root=0, algorithm="auto")
            else:
                # The root's call deadlocks alone, so don't issue it.
                yield comm.sim.timeout(0)

        run_job(cluster_b(2), 4, fn, ppn=2)

    def test_ibcast_nonblocking(self):
        vector = np.arange(5.0)

        def fn(comm):
            data = DataPayload(vector.copy()) if comm.rank == 0 else None
            req = comm.ibcast(data, root=0, algorithm="binomial")
            out = yield from comm.wait(req)
            return out.array

        job = run_job(cluster_b(2), 4, fn, ppn=2)
        for v in job.values:
            np.testing.assert_array_equal(v, vector)


class TestAllgather:
    @pytest.mark.parametrize("algorithm", ["recursive_doubling", "bruck", "ring"])
    @pytest.mark.parametrize("nranks,ppn,nodes", LAYOUTS)
    def test_allgather_matches_concat(self, algorithm, nranks, ppn, nodes):
        count = 4

        def fn(comm):
            data = make_payload(count, data=np.full(count, float(comm.rank)))
            out = yield from comm.allgather(data, algorithm=algorithm)
            return out.array

        expected = np.concatenate([np.full(count, float(r)) for r in range(nranks)])
        job = run_job(cluster_b(nodes), nranks, fn, ppn=ppn)
        for v in job.values:
            np.testing.assert_array_equal(v, expected)


class TestReduceScatter:
    @pytest.mark.parametrize("algorithm", ["recursive_halving", "pairwise"])
    @pytest.mark.parametrize("nranks,ppn,nodes", [(8, 4, 2), (6, 2, 3), (3, 1, 3)])
    def test_chunks_match_numpy(self, algorithm, nranks, ppn, nodes):
        count = 23
        inputs = _inputs(nranks, count, seed=1)

        def fn(comm):
            out = yield from comm.reduce_scatter(
                DataPayload(inputs[comm.rank]), SUM, algorithm=algorithm
            )
            return out.array

        full = SUM.reduce_stack(inputs)
        bounds = split_bounds(count, nranks)
        job = run_job(cluster_b(nodes), nranks, fn, ppn=ppn)
        for r, v in enumerate(job.values):
            np.testing.assert_array_equal(v, full[bounds[r][0]:bounds[r][1]])


class TestGatherScatter:
    def test_gather_equal_counts(self):
        def fn(comm):
            data = make_payload(3, data=np.full(3, float(comm.rank)))
            out = yield from comm.gather(data, root=0)
            return None if out is None else [p.array.tolist() for p in out]

        job = run_job(cluster_b(2), 6, fn, ppn=3)
        assert job.values[0] == [[float(r)] * 3 for r in range(6)]

    def test_gatherv_unequal_counts(self):
        def fn(comm):
            data = make_payload(
                comm.rank + 1, data=[float(comm.rank)] * (comm.rank + 1)
            )
            out = yield from comm.gather(data, root=2)
            return None if out is None else [p.count for p in out]

        job = run_job(cluster_b(2), 5, fn, ppn=3)
        assert job.values[2] == [1, 2, 3, 4, 5]

    def test_scatter_roundtrip(self):
        def fn(comm):
            if comm.rank == 0:
                pieces = [
                    make_payload(2, data=[float(r), float(r * r)])
                    for r in range(comm.size)
                ]
            else:
                pieces = None
            mine = yield from comm.scatter(pieces, root=0)
            return mine.array.tolist()

        job = run_job(cluster_b(2), 7, fn, ppn=4)
        assert job.values == [[float(r), float(r * r)] for r in range(7)]

    def test_scatter_wrong_count_rejected(self):
        def fn(comm):
            if comm.rank == 0:
                with pytest.raises(MPIError, match="exactly"):
                    yield from comm.scatter([make_payload(1)], root=0)
            else:
                yield comm.sim.timeout(0)

        run_job(cluster_b(2), 4, fn, ppn=2)


class TestRegistryKinds:
    def test_kinds_registered(self):
        assert "dpml" in available_collectives("reduce")
        assert "dpml" in available_collectives("bcast")
        assert "bruck" in available_collectives("allgather")
        assert "pairwise" in available_collectives("reduce_scatter")
        assert "binomial" in available_collectives("gather")

    def test_unknown_kind_rejected(self):
        with pytest.raises(TuningError):
            available_collectives("alltoallw")


@given(
    nranks=st.integers(2, 10),
    count=st.integers(1, 30),
    root=st.integers(0, 9),
    seed=st.integers(0, 999),
)
@settings(max_examples=40, deadline=None)
def test_property_reduce_then_bcast_equals_allreduce(nranks, count, root, seed):
    """reduce(root) followed by bcast(root) == allreduce, for any shape."""
    root = root % nranks
    inputs = _inputs(nranks, count, seed=seed)
    ppn = min(3, nranks)
    nodes = -(-nranks // ppn)

    def fn(comm):
        data = DataPayload(inputs[comm.rank])
        reduced = yield from comm.reduce(data, SUM, root=root, algorithm="dpml")
        out = yield from comm.bcast(reduced, root=root, algorithm="dpml")
        return out.array

    job = run_job(cluster_b(nodes), nranks, fn, ppn=ppn)
    expected = SUM.reduce_stack(inputs)
    for v in job.values:
        np.testing.assert_array_equal(v, expected)
