"""Communicator management: split, barrier, request API, contexts."""

import pytest

from repro.errors import MPIError
from repro.machine.clusters import cluster_b
from repro.mpi import run_job
from repro.payload import SUM, SymbolicPayload, make_payload


class TestSplit:
    def test_split_by_parity(self):
        def fn(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            return (sub.rank, sub.size, sub.world_rank)

        res = run_job(cluster_b(2), 8, fn, ppn=4)
        for rank, (sub_rank, sub_size, world) in enumerate(res.values):
            assert sub_size == 4
            assert world == rank
            assert sub_rank == rank // 2

    def test_split_undefined_color_returns_none(self):
        def fn(comm):
            sub = yield from comm.split(color=0 if comm.rank < 2 else -1)
            return sub if sub is None else sub.size

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        assert res.values == [2, 2, None, None]

    def test_split_key_reorders_ranks(self):
        def fn(comm):
            sub = yield from comm.split(color=0, key=-comm.rank)
            return sub.rank

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        assert res.values == [3, 2, 1, 0]

    def test_nested_split(self):
        def fn(comm):
            node_comm = yield from comm.split(color=comm.machine.node_of(comm.world_rank))
            pair = yield from node_comm.split(color=node_comm.rank // 2)
            return (node_comm.size, pair.size)

        res = run_job(cluster_b(2), 8, fn, ppn=4)
        assert all(v == (4, 2) for v in res.values)

    def test_split_comms_have_distinct_contexts(self):
        def fn(comm):
            a = yield from comm.split(color=0)
            b = yield from comm.split(color=0)
            return (a.group.context, b.group.context)

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        a_ctx, b_ctx = res.values[0]
        assert a_ctx != b_ctx
        assert all(v == (a_ctx, b_ctx) for v in res.values)

    def test_traffic_isolated_between_split_comms(self):
        """Same tags on different communicators must not cross-match."""
        def fn(comm):
            sub = yield from comm.split(color=comm.rank % 2)
            # Everyone sends on world and on sub with the same tag.
            peer_world = comm.rank ^ 1
            peer_sub = sub.rank ^ 1
            w = comm.isend(peer_world, SymbolicPayload(1, 1), tag=9)
            s = sub.isend(peer_sub, SymbolicPayload(2, 1), tag=9)
            from_world = yield from comm.recv(peer_world, tag=9)
            from_sub = yield from sub.recv(peer_sub, tag=9)
            yield from comm.waitall([w, s])
            return (from_world.count, from_sub.count)

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        assert all(v == (1, 2) for v in res.values)


class TestBarrier:
    def test_barrier_synchronizes(self):
        def fn(comm):
            yield comm.sim.timeout(comm.rank * 1e-5)
            yield from comm.barrier()
            return comm.now

        res = run_job(cluster_b(2), 6, fn, ppn=3)
        latest_arrival = 5 * 1e-5
        assert all(v >= latest_arrival for v in res.values)

    def test_barrier_single_rank_is_noop(self):
        def fn(comm):
            yield from comm.barrier()
            return comm.now

        res = run_job(cluster_b(1), 1, fn, ppn=1)
        assert res.values[0] == 0.0

    def test_non_power_of_two_barrier(self):
        def fn(comm):
            yield from comm.barrier()
            return True

        res = run_job(cluster_b(3), 7, fn, ppn=3)
        assert all(res.values)


class TestRequests:
    def test_value_before_completion_raises(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.irecv(1, tag=1)
                with pytest.raises(MPIError):
                    _ = req.value
                payload = yield from comm.wait(req)
                return payload.count
            yield from comm.send(0, SymbolicPayload(5, 1), tag=1)

        res = run_job(cluster_b(2), 2, fn, ppn=1)
        assert res.values[0] == 5

    def test_translate_out_of_range(self):
        def fn(comm):
            with pytest.raises(MPIError):
                comm.translate(99)
            yield comm.sim.timeout(0)

        run_job(cluster_b(2), 2, fn, ppn=1)


class TestNonBlockingCollectives:
    def test_iallreduce_overlaps_and_completes(self):
        def fn(comm):
            data = make_payload(8, data=[float(comm.rank)] * 8)
            req = comm.iallreduce(data, SUM, algorithm="recursive_doubling")
            # Do other work while the collective progresses.
            yield comm.sim.timeout(1e-6)
            result = yield from comm.wait(req)
            return result.array.tolist()

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        assert all(v == [6.0] * 8 for v in res.values)

    def test_multiple_outstanding_iallreduces(self):
        def fn(comm):
            reqs = [
                comm.iallreduce(
                    make_payload(4, data=[float(comm.rank + i)] * 4),
                    SUM,
                    algorithm="recursive_doubling",
                )
                for i in range(3)
            ]
            results = yield from comm.waitall(reqs)
            return [r.array[0] for r in results]

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        base = sum(range(4))
        assert all(v == [base, base + 4, base + 8] for v in res.values)


class TestCollectiveErrors:
    def test_unknown_algorithm(self):
        from repro.errors import TuningError

        def fn(comm):
            with pytest.raises(TuningError, match="unknown"):
                yield from comm.allreduce(
                    SymbolicPayload(1, 4), SUM, algorithm="nope"
                )

        run_job(cluster_b(2), 2, fn, ppn=1)


class TestDup:
    def test_dup_same_group_fresh_context(self):
        def fn(comm):
            dup = yield from comm.dup()
            assert dup.size == comm.size
            assert dup.rank == comm.rank
            assert dup.group.context != comm.group.context
            # Traffic isolation: same (peer, tag) on both comms.
            peer = comm.rank ^ 1
            a = comm.isend(peer, SymbolicPayload(1, 1), tag=5)
            b = dup.isend(peer, SymbolicPayload(2, 1), tag=5)
            from_dup = yield from dup.recv(peer, tag=5)
            from_orig = yield from comm.recv(peer, tag=5)
            yield from comm.waitall([a, b])
            return (from_orig.count, from_dup.count)

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        assert all(v == (1, 2) for v in res.values)
