"""Correctness of every allreduce algorithm against numpy references.

The heart of the validation strategy: all algorithms are exercised with
real data over assorted (ranks, ppn, count, op) shapes — including
non-power-of-two process counts, counts smaller than the process count,
and counts not divisible by the leader count — and the result must be
exactly what numpy computes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.clusters import cluster_a, cluster_b, cluster_d
from repro.mpi import run_job
from repro.mpi.collectives.registry import available_algorithms
from repro.payload import MAX, MIN, PROD, SUM, make_payload

# Derived from the registry at collection time, so a newly registered
# algorithm joins the correctness matrix automatically instead of
# waiting for someone to extend a hand-maintained list.  SHArP designs
# need the Cluster-A switch fabric and get their own class below.
SHARP_ALGORITHMS = [
    a for a in available_algorithms() if a.startswith("sharp")
]
GENERAL_ALGORITHMS = [
    a for a in available_algorithms() if not a.startswith("sharp")
]


def allreduce_job(config, nranks, ppn, algorithm, count, op=SUM, seed=0, **kw):
    rng = np.random.default_rng(seed)
    inputs = [rng.integers(1, 10, count).astype(np.float64) for _ in range(nranks)]

    def fn(comm):
        data = make_payload(count, data=inputs[comm.rank])
        result = yield from comm.allreduce(data, op, algorithm=algorithm, **kw)
        return result.array

    job = run_job(config, nranks, fn, ppn=ppn)
    expected = op.reduce_stack(inputs)
    for rank, got in enumerate(job.values):
        np.testing.assert_array_equal(
            got, expected, err_msg=f"{algorithm} wrong on rank {rank}"
        )
    return job


@pytest.mark.parametrize("algorithm", GENERAL_ALGORITHMS)
class TestAllAlgorithmsBasic:
    def test_pow2_layout(self, algorithm):
        allreduce_job(cluster_b(4), 16, 4, algorithm, count=32)

    def test_non_pow2_ranks(self, algorithm):
        allreduce_job(cluster_b(5), 13, 3, algorithm, count=17)

    def test_count_smaller_than_ranks(self, algorithm):
        allreduce_job(cluster_b(4), 12, 3, algorithm, count=5)

    def test_single_rank(self, algorithm):
        allreduce_job(cluster_b(1), 1, 1, algorithm, count=8)

    def test_two_ranks(self, algorithm):
        allreduce_job(cluster_b(2), 2, 1, algorithm, count=8)

    def test_max_op(self, algorithm):
        allreduce_job(cluster_b(4), 8, 2, algorithm, count=16, op=MAX)


@pytest.mark.parametrize("op", [SUM, MAX, MIN, PROD])
def test_all_ops_recursive_doubling(op):
    allreduce_job(cluster_b(3), 6, 2, "recursive_doubling", count=9, op=op)


class TestDpmlShapes:
    @pytest.mark.parametrize("leaders", [1, 2, 3, 4, 8])
    def test_leader_counts(self, leaders):
        allreduce_job(cluster_b(4), 32, 8, "dpml", count=30, leaders=leaders)

    def test_leaders_exceed_ppn_clamped(self):
        allreduce_job(cluster_b(4), 8, 2, "dpml", count=16, leaders=16)

    def test_count_not_divisible_by_leaders(self):
        allreduce_job(cluster_b(4), 16, 4, "dpml", count=13, leaders=4)

    def test_count_smaller_than_leaders(self):
        allreduce_job(cluster_b(4), 16, 4, "dpml", count=2, leaders=4)

    def test_uneven_last_node(self):
        # 10 ranks at ppn=4: nodes get 4, 4, 2 -> leaders clamp to 2.
        allreduce_job(cluster_b(3), 10, 4, "dpml", count=24, leaders=4)

    def test_single_node(self):
        allreduce_job(cluster_b(1), 8, 8, "dpml", count=16, leaders=4)

    def test_one_rank_per_node(self):
        allreduce_job(cluster_b(4), 4, 1, "dpml", count=16, leaders=4)

    @pytest.mark.parametrize("unit", [64, 256, 4096])
    def test_pipelined_units(self, unit):
        allreduce_job(
            cluster_b(4), 16, 4, "dpml_pipelined", count=1024,
            leaders=4, pipeline_unit=unit,
        )

    def test_inter_algorithm_override(self):
        for inter in ("recursive_doubling", "rabenseifner", "ring"):
            allreduce_job(
                cluster_b(4), 16, 4, "dpml", count=64, leaders=2,
                inter_algorithm=inter,
            )

    def test_repeated_calls_reuse_plan(self):
        """Back-to-back collectives on one communicator stay correct."""
        config = cluster_b(4)

        def fn(comm):
            totals = []
            for i in range(5):
                data = make_payload(10, data=np.full(10, float(comm.rank + i)))
                result = yield from comm.allreduce(
                    data, SUM, algorithm="dpml", leaders=2
                )
                totals.append(result.array[0])
            return totals

        job = run_job(config, 8, fn, ppn=2)
        for v in job.values:
            assert v == [sum(range(8)) + 8 * i for i in range(5)]


class TestSharpCorrectness:
    @pytest.mark.parametrize("algorithm", SHARP_ALGORITHMS)
    @pytest.mark.parametrize("nranks,ppn", [(8, 2), (12, 3), (4, 1), (28, 7)])
    def test_sharp_layouts(self, algorithm, nranks, ppn):
        allreduce_job(cluster_a(4), nranks, ppn, algorithm, count=12)

    def test_sharp_rejected_without_switch_support(self):
        from repro.errors import ConfigError

        def fn(comm):
            with pytest.raises(ConfigError, match="no SHArP"):
                yield from comm.allreduce(
                    make_payload(4), SUM, algorithm="sharp_node_leader"
                )

        run_job(cluster_b(2), 4, fn, ppn=2)

    def test_sharp_on_knl_tuned_does_not_pick_sharp(self):
        # Cluster D has no SHArP; the tuned selector must still work.
        allreduce_job(cluster_d(2), 8, 4, "dpml_tuned", count=8)


class TestRegistry:
    def test_available_algorithms_complete(self):
        names = available_algorithms()
        for expected in [
            "recursive_doubling",
            "rabenseifner",
            "ring",
            "reduce_bcast",
            "hierarchical",
            "dpml",
            "dpml_pipelined",
            "dpml_tuned",
            "mvapich2",
            "intel_mpi",
            "flat_auto",
            "dualroot_pipelined",
            "optimal_rsag",
            "generalized",
            "adaptive",
            "sharp_node_leader",
            "sharp_socket_leader",
        ]:
            assert expected in names

    def test_matrix_is_registry_complete(self):
        """The two collection-time lists partition the full registry."""
        assert sorted(GENERAL_ALGORITHMS + SHARP_ALGORITHMS) == (
            available_algorithms()
        )


@given(
    nranks=st.integers(2, 12),
    count=st.integers(1, 40),
    algorithm=st.sampled_from(GENERAL_ALGORITHMS),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_property_allreduce_matches_numpy(nranks, count, algorithm, seed):
    """Any algorithm, any layout, any vector: result == numpy sum."""
    ppn = min(4, nranks)
    nodes = -(-nranks // ppn)
    allreduce_job(
        cluster_b(max(nodes, 1)), nranks, ppn, algorithm, count=count, seed=seed
    )
