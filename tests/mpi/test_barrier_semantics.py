"""Barrier correctness under adversarial arrival patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.clusters import cluster_b
from repro.mpi import run_job


@given(
    nranks=st.integers(2, 14),
    delays=st.lists(st.floats(0, 1e-3), min_size=14, max_size=14),
)
@settings(max_examples=30, deadline=None)
def test_property_no_rank_exits_before_last_arrival(nranks, delays):
    """The defining barrier property, for any arrival pattern."""
    delays = delays[:nranks]

    def fn(comm):
        yield comm.sim.timeout(delays[comm.rank])
        arrived = comm.now
        yield from comm.barrier()
        return (arrived, comm.now)

    ppn = min(4, nranks)
    nodes = -(-nranks // ppn)
    job = run_job(cluster_b(nodes), nranks, fn, ppn=ppn)
    last_arrival = max(arrived for arrived, _ in job.values)
    for arrived, left in job.values:
        assert left >= last_arrival


def test_back_to_back_barriers_do_not_interfere():
    def fn(comm):
        times = []
        for _ in range(5):
            yield from comm.barrier()
            times.append(comm.now)
        return times

    job = run_job(cluster_b(2), 8, fn, ppn=4)
    # All ranks observe the same barrier epochs, strictly increasing.
    reference = job.values[0]
    assert reference == sorted(reference)
    assert len(set(reference)) == 5


def test_barrier_cost_scales_logarithmically():
    def timed(nranks, nodes, ppn):
        def fn(comm):
            yield from comm.barrier()  # absorb startup skew
            t0 = comm.now
            yield from comm.barrier()
            return comm.now - t0

        return max(run_job(cluster_b(nodes), nranks, fn, ppn=ppn).values)

    t8 = timed(8, 8, 1)
    t64 = timed(64, 64, 1)
    # Dissemination: lg(64)/lg(8) = 2x rounds, not 8x.
    assert t64 < 4 * t8
