"""Algorithm-specific behavior of the literature allreduce families.

The generic correctness/sanitizer/golden grids cover these three
algorithms via registry parametrization; this module pins the knobs
and helper functions unique to each design — tree depth and segment
schedules (dual-root), the recursive-halving schedule for arbitrary
process counts (optimal RS/AG), radix factorisation and validation
(generalized) — plus their cost-model closed forms.
"""

import numpy as np
import pytest

from repro.core.model import CostModel
from repro.errors import MPIError
from repro.machine.clusters import cluster_b
from repro.mpi import run_job
from repro.mpi.collectives.dualroot import (
    DEFAULT_SEGMENT_BYTES,
    MAX_SEGMENTS,
    dualroot_depth,
    dualroot_segments,
)
from repro.mpi.collectives.generalized import _resolve_radices, prime_factors
from repro.payload import SUM, make_payload
from tests.mpi.test_collectives import allreduce_job

MODEL = CostModel(a=1e-6, b=1e-9, a_shm=1e-7, b_shm=1e-10, c=1e-10)


class TestDualrootSchedule:
    @pytest.mark.parametrize(
        "p,depth",
        [(1, 0), (2, 1), (3, 1), (4, 2), (7, 2), (8, 3), (15, 3), (16, 4)],
    )
    def test_heap_tree_depth(self, p, depth):
        assert dualroot_depth(p) == depth

    def test_segment_count_clamps(self):
        assert dualroot_segments(0) == 1
        assert dualroot_segments(1) == 1
        assert dualroot_segments(DEFAULT_SEGMENT_BYTES) == 1
        assert dualroot_segments(DEFAULT_SEGMENT_BYTES + 1) == 2
        assert dualroot_segments(10**9) == MAX_SEGMENTS

    @pytest.mark.parametrize("segment_bytes", [64, 1024, DEFAULT_SEGMENT_BYTES])
    def test_correct_for_any_segment_size(self, segment_bytes):
        allreduce_job(
            cluster_b(3), 11, 4, "dualroot_pipelined", count=200,
            segment_bytes=segment_bytes,
        )

    def test_odd_count_splits_unevenly_but_correctly(self):
        # mid = (count+1)//2: first half one element larger.
        allreduce_job(cluster_b(2), 6, 3, "dualroot_pipelined", count=7)


class TestGeneralizedRadices:
    @pytest.mark.parametrize(
        "p,factors",
        [(1, ()), (2, (2,)), (12, (2, 2, 3)), (13, (13,)),
         (360, (2, 2, 2, 3, 3, 5))],
    )
    def test_prime_factorisation(self, p, factors):
        assert prime_factors(p) == factors

    def test_resolve_defaults_to_primes(self):
        assert _resolve_radices(12, None) == (2, 2, 3)

    def test_radix_below_two_rejected(self):
        with pytest.raises(MPIError, match=">= 2"):
            _resolve_radices(12, (1, 12))

    def test_product_mismatch_rejected(self):
        with pytest.raises(MPIError, match="multiply to"):
            _resolve_radices(12, (2, 3))

    @pytest.mark.parametrize("radices", [(3, 4), (4, 3), (2, 6), (6, 2), (12,)])
    def test_any_valid_factorisation_is_correct(self, radices):
        allreduce_job(
            cluster_b(3), 12, 4, "generalized", count=50, radices=radices
        )

    def test_bad_radices_raise_inside_the_job(self):
        def fn(comm):
            with pytest.raises(MPIError, match="multiply to"):
                yield from comm.allreduce(
                    make_payload(8), SUM, algorithm="generalized",
                    radices=(5,),
                )

        run_job(cluster_b(2), 4, fn, ppn=2)


class TestOptimalRsagShapes:
    """The recursive-halving schedule must cover awkward group sizes."""

    @pytest.mark.parametrize("nranks,ppn,nodes", [
        (3, 1, 3), (5, 2, 3), (6, 2, 3), (7, 4, 2), (9, 3, 3), (11, 4, 3),
    ])
    def test_odd_group_splits(self, nranks, ppn, nodes):
        allreduce_job(
            cluster_b(nodes), nranks, ppn, "optimal_rsag", count=37
        )

    def test_count_smaller_than_ranks(self):
        allreduce_job(cluster_b(3), 9, 3, "optimal_rsag", count=4)


class TestLiteratureClosedForms:
    def test_single_rank_costs_nothing(self):
        for fn in (
            MODEL.t_dualroot_pipelined,
            MODEL.t_optimal_rsag,
            MODEL.t_generalized,
        ):
            assert fn(1, 4096) == 0.0

    def test_predict_maps_to_closed_forms(self):
        n = 1 << 16
        assert MODEL.predict_allreduce(
            "dualroot_pipelined", p=16, h=4, n=n
        ) == MODEL.t_dualroot_pipelined(16, n)
        assert MODEL.predict_allreduce(
            "optimal_rsag", p=16, h=4, n=n
        ) == MODEL.t_optimal_rsag(16, n)
        assert MODEL.predict_allreduce(
            "generalized", p=16, h=4, n=n
        ) == MODEL.t_generalized(16, n)

    def test_flat_forms_ignore_node_count(self):
        n = 4096
        for h in (1, 2, 8):
            assert MODEL.predict_allreduce(
                "optimal_rsag", p=16, h=h, n=n
            ) == MODEL.t_optimal_rsag(16, n)

    def test_dualroot_default_k_matches_implementation(self):
        n = 6 * DEFAULT_SEGMENT_BYTES  # 3 segments per half
        k = dualroot_segments(n // 2)
        assert MODEL.t_dualroot_pipelined(16, n) == MODEL.t_dualroot_pipelined(
            16, n, k
        )

    def test_pipelining_amortises_large_messages(self):
        # More segments -> fewer bytes per step on the critical path.
        n = 16 * DEFAULT_SEGMENT_BYTES
        assert MODEL.t_dualroot_pipelined(64, n, 8) < (
            MODEL.t_dualroot_pipelined(64, n, 1)
        )

    def test_generalized_radix_order_changes_price(self):
        # Same factors, different stage order: same traffic totals.
        n = 1 << 15
        assert MODEL.t_generalized(12, n, (2, 2, 3)) == pytest.approx(
            MODEL.t_generalized(12, n, (3, 2, 2))
        )
        # A single direct stage trades latency for fewer rounds.
        assert MODEL.t_generalized(12, n, (12,)) != (
            MODEL.t_generalized(12, n, (2, 2, 3))
        )

    def test_generalized_rejects_bad_radices_in_model_too(self):
        with pytest.raises(MPIError):
            MODEL.t_generalized(12, 1024, (5, 5))


def test_large_vector_end_to_end_all_families():
    """One big-payload pass: results equal numpy on a 64KB vector."""
    rng = np.random.default_rng(2)
    count = 8192
    inputs = [rng.integers(1, 6, count).astype(np.float64) for _ in range(8)]
    expected = SUM.reduce_stack(inputs)
    for algorithm in ("dualroot_pipelined", "optimal_rsag", "generalized"):
        def fn(comm, algorithm=algorithm):
            data = make_payload(count, data=inputs[comm.rank])
            out = yield from comm.allreduce(data, SUM, algorithm=algorithm)
            return out.array

        job = run_job(cluster_b(2), 8, fn, ppn=4, sanitize=True)
        for rank, got in enumerate(job.values):
            np.testing.assert_array_equal(got, expected)
