"""Point-to-point semantics through the full transport stack."""

import numpy as np
import pytest

from repro.errors import DeadlockError
from repro.machine.clusters import cluster_b
from repro.mpi import ANY_SOURCE, ANY_TAG, run_job
from repro.payload import DataPayload, SymbolicPayload, make_payload


def job(nranks=4, ppn=2, nodes=4):
    return cluster_b(nodes), nranks, ppn


class TestBlockingSendRecv:
    def test_intra_node_roundtrip(self):
        config, n, ppn = job(2, 2, 1)

        def fn(comm):
            if comm.rank == 0:
                yield from comm.send(1, make_payload(4, data=[1, 2, 3, 4]))
                reply = yield from comm.recv(1)
                return reply.array.tolist()
            msg = yield from comm.recv(0)
            yield from comm.send(0, DataPayload(msg.array * 2))
            return None

        res = run_job(config, n, fn, ppn=ppn)
        assert res.values[0] == [2.0, 4.0, 6.0, 8.0]

    def test_inter_node_roundtrip(self):
        config, n, ppn = job(2, 1, 2)

        def fn(comm):
            if comm.rank == 0:
                yield from comm.send(1, make_payload(3, data=[5, 6, 7]))
                return None
            msg = yield from comm.recv(0)
            return msg.array.tolist()

        res = run_job(config, n, fn, ppn=ppn)
        assert res.values[1] == [5.0, 6.0, 7.0]

    def test_large_message_uses_rendezvous_and_arrives(self):
        config, n, ppn = job(2, 1, 2)
        count = 1 << 16  # 512 KB of float64: beyond the eager threshold

        def fn(comm):
            if comm.rank == 0:
                yield from comm.send(1, make_payload(count, data=np.arange(count)))
                return None
            msg = yield from comm.recv(0)
            return float(msg.array[-1])

        res = run_job(config, n, fn, ppn=ppn)
        assert res.values[1] == float(count - 1)

    def test_message_ordering_same_pair(self):
        """Non-overtaking: a big eager message posted first must match
        the first recv even if a tiny one could physically overtake."""
        config, n, ppn = job(2, 1, 2)

        def fn(comm):
            if comm.rank == 0:
                big = SymbolicPayload(4000, 1)  # chunked, slower
                small = SymbolicPayload(1, 1)
                r1 = comm.isend(1, big, tag=7)
                r2 = comm.isend(1, small, tag=7)
                yield from comm.waitall([r1, r2])
                return None
            first = yield from comm.recv(0, tag=7)
            second = yield from comm.recv(0, tag=7)
            return (first.nbytes, second.nbytes)

        res = run_job(config, n, fn, ppn=ppn)
        assert res.values[1] == (4000, 1)

    def test_self_send(self):
        config, n, ppn = job(1, 1, 1)

        def fn(comm):
            req = comm.isend(0, make_payload(2, data=[9, 9]), tag=3)
            msg = yield from comm.recv(0, tag=3)
            yield from comm.wait(req)
            return msg.array.tolist()

        res = run_job(config, n, fn, ppn=ppn)
        assert res.values[0] == [9.0, 9.0]


class TestNonBlocking:
    def test_waitany_returns_first_completion(self):
        config, n, ppn = job(3, 3, 1)

        def fn(comm):
            if comm.rank == 0:
                fast = comm.irecv(1, tag=1)
                slow = comm.irecv(2, tag=2)
                idx, payload = yield from comm.waitany([slow, fast])
                yield from comm.waitall([slow, fast])
                return idx
            if comm.rank == 1:
                yield from comm.send(0, SymbolicPayload(1, 1), tag=1)
            else:
                yield comm.sim.timeout(1e-3)
                yield from comm.send(0, SymbolicPayload(1, 1), tag=2)

        res = run_job(config, n, fn, ppn=ppn)
        assert res.values[0] == 1  # the 'fast' request (index 1) wins

    def test_isend_completes_before_recv_posted(self):
        """Eager sends complete locally without a matching receive."""
        config, n, ppn = job(2, 1, 2)

        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(1, SymbolicPayload(8, 1), tag=1)
                yield from comm.wait(req)
                done_at = comm.now
                # Receiver only posts much later.
                yield from comm.send(1, SymbolicPayload(0, 1), tag=2)
                return done_at
            yield comm.sim.timeout(1e-3)
            yield from comm.recv(0, tag=1)
            msg = yield from comm.recv(0, tag=2)
            return comm.now

        res = run_job(config, n, fn, ppn=ppn)
        assert res.values[0] < 1e-3  # sender was not blocked

    def test_wildcards(self):
        config, n, ppn = job(3, 3, 1)

        def fn(comm):
            if comm.rank == 0:
                a = yield from comm.recv(ANY_SOURCE, ANY_TAG)
                b = yield from comm.recv(ANY_SOURCE, ANY_TAG)
                return sorted([a.count, b.count])
            yield comm.sim.timeout(comm.rank * 1e-6)
            yield from comm.send(0, SymbolicPayload(comm.rank, 1), tag=comm.rank)

        res = run_job(config, n, fn, ppn=ppn)
        assert res.values[0] == [1, 2]


class TestDeadlocks:
    def test_unmatched_recv_deadlocks_with_named_rank(self):
        config, n, ppn = job(2, 2, 1)

        def fn(comm):
            if comm.rank == 0:
                yield from comm.recv(1, tag=99)  # nobody sends this

        with pytest.raises(DeadlockError, match="rank0"):
            run_job(config, n, fn, ppn=ppn)

    def test_mutual_blocking_large_sends_deadlock(self):
        """Two rendezvous sends with no receives posted must hang."""
        config, n, ppn = job(2, 1, 2)
        big = 1 << 16

        def fn(comm):
            peer = 1 - comm.rank
            yield from comm.send(peer, SymbolicPayload(big, 8))
            yield from comm.recv(peer)

        with pytest.raises(DeadlockError):
            run_job(config, n, fn, ppn=ppn)


class TestTiming:
    def test_inter_node_slower_than_intra_node(self):
        def fn(comm):
            if comm.rank == 0:
                t0 = comm.now
                yield from comm.send(1, SymbolicPayload(1024, 1))
                yield from comm.recv(1)
                return comm.now - t0
            msg = yield from comm.recv(0)
            yield from comm.send(0, msg)

        intra = run_job(cluster_b(1), 2, fn, ppn=2).values[0]
        inter = run_job(cluster_b(2), 2, fn, ppn=1).values[0]
        assert inter > intra

    def test_transfer_time_grows_with_size(self):
        def fn(comm, nbytes):
            if comm.rank == 0:
                yield from comm.send(1, SymbolicPayload(nbytes, 1))
                yield from comm.recv(1)
                return comm.now
            yield from comm.recv(0)
            yield from comm.send(0, SymbolicPayload(0, 1))

        times = [
            run_job(cluster_b(2), 2, fn, ppn=1, args=(nb,)).values[0]
            for nb in (1024, 65536, 1 << 20)
        ]
        assert times == sorted(times)
        assert times[2] > times[0] * 5
