"""SimSession reuse: bit-identical to fresh builds, cheaper per run."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import allreduce_latency, allreduce_latency_stats
from repro.errors import ReproError
from repro.machine.clusters import cluster_a, cluster_b
from repro.machine.machine import Machine
from repro.machine.noise import NoiseModel
from repro.mpi.runtime import Runtime, SimSession


class TestSessionBasics:
    def test_reuse_produces_identical_results(self):
        session = SimSession(cluster_b(2), nranks=4, ppn=2)

        def fn(comm):
            yield comm.sim.timeout((comm.rank + 1) * 1e-6)
            return comm.now

        first = session.run(fn)
        second = session.run(fn)
        assert first.values == second.values
        assert first.elapsed == second.elapsed
        assert session.runs == 2

    def test_matches_checks_layout(self):
        config = cluster_b(2)
        session = SimSession(config, nranks=4, ppn=2)
        assert session.matches(config, 4, 2)
        assert session.matches(config, 4, None)
        assert not session.matches(config, 8, 2)
        assert not session.matches(cluster_a(2), 4, 2)

    def test_mismatched_session_rejected_by_harness(self):
        session = SimSession(cluster_b(2), nranks=4, ppn=2)
        with pytest.raises(ReproError, match="does not match"):
            allreduce_latency(
                cluster_b(4), "rabenseifner", 1024, ppn=2, session=session
            )

    def test_sim_clock_rewinds_between_runs(self):
        session = SimSession(cluster_b(2), nranks=2, ppn=1)

        def fn(comm):
            yield comm.sim.timeout(5e-6)
            return comm.now

        assert session.run(fn).values == session.run(fn).values
        assert session.machine.sim.now == pytest.approx(5e-6)


class TestSessionDeterminism:
    """A reused session must be bit-identical to a fresh machine."""

    # Non-power-of-two node counts and ppn exercise the shifted-rank /
    # remainder paths of rabenseifner and the uneven partitioning of
    # dpml on top of the reset machinery.
    LAYOUTS = [(2, 2), (3, 5), (4, 3), (5, 4)]

    @pytest.mark.parametrize("algorithm", ["rabenseifner", "dpml"])
    @pytest.mark.parametrize("nodes,ppn", LAYOUTS)
    def test_session_matches_fresh(self, algorithm, nodes, ppn):
        config = cluster_b(nodes)
        session = SimSession(config, nranks=nodes * ppn, ppn=ppn)
        for nbytes in (1024, 65536):
            fresh = allreduce_latency(
                config, algorithm, nbytes, ppn=ppn, iterations=2
            )
            reused = allreduce_latency(
                config, algorithm, nbytes, ppn=ppn, iterations=2, session=session
            )
            assert reused == fresh, (
                f"{algorithm} at {nodes}x{ppn}, {nbytes}B: "
                f"session {reused} != fresh {fresh}"
            )

    @pytest.mark.parametrize("nodes,ppn", [(2, 4), (3, 5)])
    def test_sharp_session_matches_fresh(self, nodes, ppn):
        # sharp_node_leader exercises gates, shm regions, and the
        # switch-tree context Resource across resets.
        config = cluster_a(nodes)
        session = SimSession(config, nranks=nodes * ppn, ppn=ppn)
        for nbytes in (256, 4096):
            fresh = allreduce_latency(
                config, "sharp_node_leader", nbytes, ppn=ppn, iterations=2
            )
            reused = allreduce_latency(
                config, "sharp_node_leader", nbytes, ppn=ppn, iterations=2,
                session=session,
            )
            assert reused == fresh

    def test_interleaved_algorithms_stay_deterministic(self):
        """Back-to-back different algorithms must not contaminate runs."""
        config = cluster_b(3)
        session = SimSession(config, nranks=12, ppn=4)
        fresh = {
            alg: allreduce_latency(config, alg, 16384, ppn=4, iterations=2)
            for alg in ("rabenseifner", "dpml", "recursive_doubling")
        }
        for alg in ("dpml", "recursive_doubling", "rabenseifner", "dpml"):
            reused = allreduce_latency(
                config, alg, 16384, ppn=4, iterations=2, session=session
            )
            assert reused == fresh[alg]

    @settings(max_examples=6, deadline=None)
    @given(
        nodes=st.integers(min_value=2, max_value=5),
        ppn=st.integers(min_value=1, max_value=6),
        nbytes=st.sampled_from([4, 1024, 16384, 262144]),
        algorithm=st.sampled_from(["rabenseifner", "dpml"]),
    )
    def test_property_session_equals_fresh(self, nodes, ppn, nbytes, algorithm):
        config = cluster_b(nodes)
        session = SimSession(config, nranks=nodes * ppn, ppn=ppn)
        fresh = allreduce_latency(config, algorithm, nbytes, ppn=ppn, iterations=1)
        reused = allreduce_latency(
            config, algorithm, nbytes, ppn=ppn, iterations=1, session=session
        )
        assert reused == fresh

    def test_noise_stream_rewound_per_run(self):
        """Same seed on a reused session reproduces the jittered timing."""
        config = cluster_b(2)
        session = SimSession(config, nranks=4, ppn=2)
        a = allreduce_latency(
            config, "dpml", 4096, ppn=2, iterations=1,
            noise=NoiseModel(sigma=0.05, seed=7), session=session,
        )
        b = allreduce_latency(
            config, "dpml", 4096, ppn=2, iterations=1,
            noise=NoiseModel(sigma=0.05, seed=7), session=session,
        )
        fresh = allreduce_latency(
            config, "dpml", 4096, ppn=2, iterations=1,
            noise=NoiseModel(sigma=0.05, seed=7),
        )
        assert a == b == fresh

    def test_stats_reuse_one_session(self):
        config = cluster_b(2)
        session = SimSession(config, nranks=4, ppn=2)
        stats = allreduce_latency_stats(
            config, "dpml", 4096, ppn=2, iterations=1,
            repeats=3, sigma=0.05, session=session,
        )
        assert session.runs == 3
        assert len(stats.samples) == 3
        # distinct seeds -> distinct jitter
        assert len(set(stats.samples)) > 1


class TestRuntimeReset:
    def test_reset_clears_shm_and_contexts(self):
        machine = Machine(cluster_b(2), 4, 2)
        runtime = Runtime(machine)
        region = runtime.shm_region(0)
        c1 = runtime.next_context()
        runtime.reset()
        assert runtime.shm_region(0) is not region
        assert runtime.next_context() == c1
