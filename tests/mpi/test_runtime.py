"""Tests for job launch and the runtime's coordination facilities."""

import pytest

from repro.errors import MPIError
from repro.machine.clusters import cluster_b
from repro.machine.machine import Machine
from repro.mpi.runtime import Runtime, run_job
from repro.payload import SymbolicPayload


class TestLaunch:
    def test_values_in_rank_order(self):
        def fn(comm):
            yield comm.sim.timeout(0)
            return comm.rank * 10

        res = run_job(cluster_b(2), 6, fn, ppn=3)
        assert res.values == [0, 10, 20, 30, 40, 50]

    def test_value_accessor(self):
        def fn(comm):
            yield comm.sim.timeout(0)
            return comm.world_rank

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        assert res.value(2) == 2

    def test_elapsed_reflects_last_event(self):
        def fn(comm):
            yield comm.sim.timeout(comm.rank * 1e-3)

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        assert res.elapsed == pytest.approx(3e-3)

    def test_non_generator_fn_rejected(self):
        def not_a_generator(comm):
            return 42

        with pytest.raises(MPIError, match="generator"):
            run_job(cluster_b(2), 2, not_a_generator, ppn=1)

    def test_prebuilt_machine_rank_mismatch_rejected(self):
        machine = Machine(cluster_b(2), 4, 2)

        def fn(comm):
            yield comm.sim.timeout(0)

        with pytest.raises(MPIError, match="built for"):
            run_job(machine, 8, fn)

    def test_args_and_kwargs_forwarded(self):
        def fn(comm, base, scale=1):
            yield comm.sim.timeout(0)
            return base + comm.rank * scale

        res = run_job(
            cluster_b(2), 2, fn, ppn=1, args=(100,), kwargs={"scale": 5}
        )
        assert res.values == [100, 105]

    def test_rank_exception_propagates(self):
        def fn(comm):
            yield comm.sim.timeout(0)
            if comm.rank == 1:
                raise RuntimeError("rank 1 exploded")

        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            run_job(cluster_b(2), 4, fn, ppn=2)


class TestGates:
    def test_gate_rendezvous(self):
        machine = Machine(cluster_b(2), 4, 2)
        runtime = Runtime(machine)
        order = []

        def party(i):
            yield machine.sim.timeout(i * 1e-6)
            event, is_last = runtime.gate("g", parties=4)
            if is_last:
                order.append(("last", i))
                event.succeed("done")
            value = yield event
            order.append((i, value))

        for i in range(4):
            machine.sim.process(party(i))
        machine.sim.run()
        assert ("last", 3) in order
        assert sum(1 for item in order if item[1] == "done") == 4

    def test_gate_overfill_rejected(self):
        """Mismatched party counts between arrivers are caught."""
        machine = Machine(cluster_b(2), 2, 1)
        runtime = Runtime(machine)
        runtime.gate("g", parties=3)
        with pytest.raises(MPIError, match="overfilled"):
            runtime.gate("g", parties=1)

    def test_late_arrival_at_completed_gate_rejected(self):
        """A straggler must get a diagnosable error, not a fresh gate.

        Gate keys are unique per collective call (tag allocation is
        monotone per communicator), so a second arrival under a
        completed key means the arrivers disagreed on the party count —
        previously a silent deadlock.
        """
        machine = Machine(cluster_b(2), 2, 1)
        runtime = Runtime(machine)
        ev1, last1 = runtime.gate("g", parties=1)
        assert last1
        with pytest.raises(MPIError, match="late arrival"):
            runtime.gate("g", parties=1)

    def test_late_arrival_at_completed_gate_exchange_rejected(self):
        machine = Machine(cluster_b(2), 2, 1)
        runtime = Runtime(machine)
        _, last, items = runtime.gate_exchange("x", 1, "a")
        assert last and items == ["a"]
        with pytest.raises(MPIError, match="late arrival"):
            runtime.gate_exchange("x", 1, "b")

    def test_straggler_behind_undercounted_gate_rejected(self):
        """Regression: parties=2 completing before a third arriver.

        Two ranks agree on parties=2 and complete the rendezvous; a
        third rank arriving with the same key used to open a *new*
        gate and wait forever.  Now it raises immediately.
        """
        machine = Machine(cluster_b(2), 3, 2)
        runtime = Runtime(machine)
        runtime.gate("g", parties=2)
        event, is_last = runtime.gate("g", parties=2)
        assert is_last
        with pytest.raises(MPIError, match="late arrival"):
            runtime.gate("g", parties=2)

    def test_reset_clears_gate_tombstones(self):
        """A reset runtime accepts keys completed by the previous job."""
        machine = Machine(cluster_b(2), 2, 1)
        runtime = Runtime(machine)
        _, last = runtime.gate("g", parties=1)
        assert last
        runtime.reset()
        _, last = runtime.gate("g", parties=1)
        assert last

    def test_gate_exchange_collects_items(self):
        machine = Machine(cluster_b(2), 2, 1)
        runtime = Runtime(machine)
        ev1, last1, items1 = runtime.gate_exchange("x", 2, "a")
        assert not last1 and items1 is None
        ev2, last2, items2 = runtime.gate_exchange("x", 2, "b")
        assert last2 and items2 == ["a", "b"]
        assert ev1 is ev2

    def test_shm_region_per_node(self):
        machine = Machine(cluster_b(2), 4, 2)
        runtime = Runtime(machine)
        assert runtime.shm_region(0) is runtime.shm_region(0)
        assert runtime.shm_region(0) is not runtime.shm_region(1)


class TestFidelity:
    def test_default_is_exact(self):
        machine = Machine(cluster_b(2), 4, ppn=2)
        assert Runtime(machine).fidelity == "exact"

    def test_explicit_mode_wins(self):
        machine = Machine(cluster_b(2), 4, ppn=2)
        assert Runtime(machine, fidelity="hybrid").fidelity == "hybrid"

    def test_env_var_supplies_the_default(self, monkeypatch):
        from repro.mpi.runtime import resolve_fidelity

        monkeypatch.setenv("REPRO_FIDELITY", "hybrid")
        assert resolve_fidelity(None) == "hybrid"
        # An explicit argument still beats the environment.
        assert resolve_fidelity("exact") == "exact"
        monkeypatch.delenv("REPRO_FIDELITY")
        assert resolve_fidelity(None) == "exact"

    def test_unknown_mode_rejected(self):
        from repro.errors import ConfigError
        from repro.mpi.runtime import resolve_fidelity

        with pytest.raises(ConfigError, match="fidelity"):
            resolve_fidelity("approximate")

    def test_fidelity_survives_reset(self):
        machine = Machine(cluster_b(2), 4, ppn=2)
        runtime = Runtime(machine, fidelity="hybrid")
        runtime.reset()
        assert runtime.fidelity == "hybrid"
