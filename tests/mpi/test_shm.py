"""Tests for the shared-memory rendezvous region."""

import pytest

from repro.errors import MPIError
from repro.mpi.shm import ShmRegion
from repro.sim import Simulator


@pytest.fixture
def region():
    return ShmRegion(Simulator())


class TestShmRegion:
    def test_put_then_take(self, region):
        region.put("k", 42)

        def getter():
            v = yield region.take("k")
            return v

        sim = region.sim
        p = sim.process(getter())
        sim.run()
        assert p.value == 42
        assert len(region) == 0  # take removes

    def test_take_blocks_until_put(self, region):
        sim = region.sim

        def getter():
            v = yield region.take("k")
            return (sim.now, v)

        def putter():
            yield sim.timeout(2.0)
            region.put("k", "late")

        g = sim.process(getter())
        sim.process(putter())
        sim.run()
        assert g.value == (2.0, "late")

    def test_double_put_rejected(self, region):
        region.put("k", 1)
        with pytest.raises(MPIError):
            region.put("k", 2)

    def test_read_with_refcount(self, region):
        sim = region.sim
        region.put("k", "v")
        got = []

        def reader():
            v = yield region.read("k", readers=3)
            got.append(v)

        for _ in range(3):
            sim.process(reader())
        sim.run()
        assert got == ["v", "v", "v"]
        assert len(region) == 0  # removed after the last reader

    def test_read_keeps_value_until_last(self, region):
        sim = region.sim
        region.put("k", "v")

        def reader():
            yield region.read("k", readers=2)

        sim.process(reader())
        sim.run()
        assert len(region) == 1  # one reader left

    def test_multiple_waiters_woken_in_order(self, region):
        sim = region.sim
        order = []

        def reader(i):
            yield region.read("k", readers=3)
            order.append(i)

        for i in range(3):
            sim.process(reader(i))

        def putter():
            yield sim.timeout(1.0)
            region.put("k", "x")

        sim.process(putter())
        sim.run()
        assert order == [0, 1, 2]

    @pytest.mark.parametrize("readers", [0, -1])
    def test_read_rejects_nonpositive_fanout(self, region, readers):
        """Regression: ``read(key, 0)`` used to register a reader whose
        countdown started below one, leaving the value stuck in the
        region forever instead of failing at the call site."""
        region.put("k", "v")
        with pytest.raises(MPIError, match="fan-out must be >= 1"):
            region.read("k", readers=readers)

    def test_distinct_keys_do_not_interfere(self, region):
        sim = region.sim
        region.put(("a", 1), "first")
        region.put(("a", 2), "second")

        def getter():
            x = yield region.take(("a", 1))
            y = yield region.take(("a", 2))
            return (x, y)

        p = sim.process(getter())
        sim.run()
        assert p.value == ("first", "second")
