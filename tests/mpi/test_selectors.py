"""Tests for the library-style selectors' dispatch decisions."""

import numpy as np
import pytest

from repro.machine.clusters import cluster_b, cluster_c, cluster_d
from repro.mpi import run_job
from repro.mpi.collectives.selector import is_multinode
from repro.payload import SUM, SymbolicPayload, make_payload


class TestIsMultinode:
    def test_single_node_job(self):
        def fn(comm):
            yield comm.sim.timeout(0)
            return is_multinode(comm)

        res = run_job(cluster_b(1), 4, fn, ppn=4)
        assert res.values == [False] * 4

    def test_multi_node_job(self):
        def fn(comm):
            yield comm.sim.timeout(0)
            return is_multinode(comm)

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        assert res.values == [True] * 4

    def test_split_subcomm_recomputed(self):
        def fn(comm):
            node_comm = yield from comm.split(
                color=comm.machine.node_of(comm.world_rank)
            )
            return (is_multinode(comm), is_multinode(node_comm))

        res = run_job(cluster_b(2), 4, fn, ppn=2)
        assert all(v == (True, False) for v in res.values)


class TestSelectorsProduceCorrectResults:
    """Every threshold region of each selector must stay correct."""

    SIZES = [64, 8192, 65536, 262144, 1 << 20]

    @pytest.mark.parametrize("selector", ["mvapich2", "intel_mpi", "flat_auto"])
    @pytest.mark.parametrize("nbytes", SIZES)
    def test_all_threshold_regions(self, selector, nbytes):
        count = max(1, nbytes // 8)

        def fn(comm):
            data = make_payload(count, data=np.full(count, float(comm.rank)))
            out = yield from comm.allreduce(data, SUM, algorithm=selector)
            return float(out.array[0])

        res = run_job(cluster_b(2), 8, fn, ppn=4)
        assert all(v == sum(range(8)) for v in res.values)

    def test_single_node_mvapich2_uses_shm(self):
        from repro.machine.machine import Machine
        from repro.mpi.runtime import Runtime

        machine = Machine(cluster_b(1), 8, 8, trace=True)

        def fn(comm):
            yield from comm.allreduce(
                SymbolicPayload(1 << 18, 4), SUM, algorithm="mvapich2"
            )

        Runtime(machine).launch(fn)
        assert machine.nic_tx[0].job_count == 0


class TestSelectionPatterns:
    def test_intel_flat_beats_mvapich2_on_knl_medium(self):
        """The paper's Cluster D ordering: Intel's flat selection ages
        better on slow cores than MVAPICH2's single-leader scheme."""
        from repro.bench.harness import allreduce_latency

        mv = allreduce_latency(cluster_d(8), "mvapich2", 65536, ppn=32)
        im = allreduce_latency(cluster_d(8), "intel_mpi", 65536, ppn=32)
        assert im < mv

    def test_mvapich2_beats_intel_on_xeon_small(self):
        """...while the shm-based scheme wins on fast Xeon cores for
        small messages (the paper's Cluster C ordering)."""
        from repro.bench.harness import allreduce_latency

        mv = allreduce_latency(cluster_c(8), "mvapich2", 256, ppn=28)
        im = allreduce_latency(cluster_c(8), "intel_mpi", 256, ppn=28)
        assert mv < im
