"""Tests for the validation-matrix self-check."""

from repro.mpi.validate import DEFAULT_LAYOUTS, ValidationReport, validate_all


class TestValidationMatrix:
    def test_reducing_kinds_subset(self):
        report = validate_all(
            kinds=["allreduce"], layouts=[(9, 3, 3)], counts=[13]
        )
        assert report.ok, report.failed[:5]
        assert report.passed > 10  # all allreduce algorithms x 2 ops

    def test_rooted_kinds_subset(self):
        report = validate_all(
            kinds=["gather", "scatter", "alltoall"],
            layouts=[(10, 4, 3)],
            counts=[1, 13],
        )
        assert report.ok, report.failed[:5]

    def test_report_summary_format(self):
        report = ValidationReport(passed=3, failed=["x"], skipped=[])
        assert report.summary() == "3 passed, 1 failed, 0 skipped"
        assert not report.ok

    def test_conftest_grid_single_sources_validate(self):
        # The shared test grid re-exports the validation module's
        # layouts — the suites must not drift apart.
        from tests.conftest import ALL_LAYOUTS, EXTRA_LAYOUTS

        assert ALL_LAYOUTS == tuple(DEFAULT_LAYOUTS) + EXTRA_LAYOUTS
        assert set(DEFAULT_LAYOUTS).isdisjoint(EXTRA_LAYOUTS)

    def test_default_layouts_cover_tricky_shapes(self):
        nranks = [l[0] for l in DEFAULT_LAYOUTS]
        assert any(n & (n - 1) for n in nranks)  # a non-power-of-two
        assert any(l[0] < l[1] * l[2] for l in DEFAULT_LAYOUTS)  # partial node
        assert any(l[2] == 1 for l in DEFAULT_LAYOUTS)  # single node
        assert any(l[1] == 1 for l in DEFAULT_LAYOUTS)  # one rank/node
