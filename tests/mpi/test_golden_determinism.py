"""Golden event-order determinism: fast mode vs the seed's compat mode.

The PR-4 hot-path work (now-queue zero-delay dispatch, event pooling,
copy-on-write payload views) must be *invisible* to simulated results:
every :class:`~repro.mpi.runtime.JobResult` — per-rank values and the
simulated elapsed time — must be bit-identical to what the seed's
heap-only, copy-always implementation produces.  Both of those old code
paths are kept alive behind compat switches
(``Simulator(compat=True)`` and ``set_payload_compat(True)``)
precisely so this equivalence stays testable forever.

The grid is the shared conftest layout grid (the same shapes as
``python -m repro.check``), and the sanitized variants re-run the
comparison with the invariant sanitizer attached, since sanitizer
bookkeeping rides the same hot paths.

The hybrid-fidelity tests extend the same contract one layer up:
macro-charging a collective through the cost model may change its
*simulated timing* (that is the point), but never its numerics — every
registered allreduce must return bit-identical result buffers in both
fidelities, hybrid timings must be deterministic run to run, and under
injected faults hybrid must fall back to the exact path cleanly
(sanitizer-silent and bit-identical to an exact faulted run, timing
included).
"""

import numpy as np
import pytest

from tests.conftest import ALL_LAYOUTS, layout_id
from repro.faults.plan import FaultPlan, Straggler
from repro.machine.clusters import cluster_a, cluster_b
from repro.mpi import run_job
from repro.mpi.collectives.registry import available_algorithms
from repro.payload import SUM, make_payload, set_payload_compat
from repro.sim import Simulator

COUNT = 96


@pytest.fixture(autouse=True)
def _restore_payload_mode():
    yield
    set_payload_compat(False)


def _allreduce_fn(inputs, algorithm, **kw):
    def fn(comm):
        data = make_payload(len(inputs[comm.rank]), data=inputs[comm.rank])
        result = yield from comm.allreduce(data, SUM, algorithm=algorithm, **kw)
        return result.array

    return fn


def _run(
    layout, algorithm, *, compat, sanitize=False, fidelity=None, faults=None,
    cluster=cluster_b, **kw
):
    """One job with kernel *and* payload layer in the given mode."""
    nranks, ppn, nodes = layout
    rng = np.random.default_rng(7)
    inputs = [
        rng.integers(1, 10, COUNT).astype(np.float64) for _ in range(nranks)
    ]
    set_payload_compat(compat)
    try:
        job = run_job(
            cluster(nodes),
            nranks,
            _allreduce_fn(inputs, algorithm, **kw),
            ppn=ppn,
            sim=Simulator(compat=compat),
            sanitize=sanitize,
            fidelity=fidelity,
            faults=faults,
        )
    finally:
        set_payload_compat(False)
    return job


def _assert_identical(golden, fast):
    assert golden.elapsed == fast.elapsed  # bit-identical simulated time
    for rank, (want, got) in enumerate(zip(golden.values, fast.values)):
        np.testing.assert_array_equal(want, got, err_msg=f"rank {rank}")


@pytest.mark.parametrize("layout", ALL_LAYOUTS, ids=layout_id)
def test_fast_mode_matches_seed_on_layout_grid(layout):
    golden = _run(layout, "dpml", compat=True)
    fast = _run(layout, "dpml", compat=False)
    _assert_identical(golden, fast)


@pytest.mark.parametrize("layout", ALL_LAYOUTS[:3], ids=layout_id)
def test_fast_mode_matches_seed_under_sanitizer(layout):
    golden = _run(layout, "dpml", compat=True, sanitize=True)
    fast = _run(layout, "dpml", compat=False, sanitize=True)
    _assert_identical(golden, fast)
    assert not golden.reports
    assert not fast.reports


@pytest.mark.parametrize(
    "algorithm",
    ["dpml", "dpml_pipelined", "dpml_tuned", "mvapich2", "hierarchical", "ring"],
)
def test_fast_mode_matches_seed_across_algorithms(algorithm):
    layout = (16, 4, 4)
    golden = _run(layout, algorithm, compat=True)
    fast = _run(layout, algorithm, compat=False)
    _assert_identical(golden, fast)


@pytest.mark.parametrize("kernel_compat", [True, False])
@pytest.mark.parametrize("payload_compat", [True, False])
def test_mixed_modes_agree(kernel_compat, payload_compat):
    """The kernel and payload switches are independent: any combination
    of the two produces the same results."""
    layout = (8, 4, 2)
    nranks, ppn, nodes = layout
    rng = np.random.default_rng(3)
    inputs = [
        rng.integers(1, 10, COUNT).astype(np.float64) for _ in range(nranks)
    ]
    golden = _run(layout, "dpml", compat=True, leaders=2)
    set_payload_compat(payload_compat)
    try:
        job = run_job(
            cluster_b(nodes),
            nranks,
            _allreduce_fn(inputs, "dpml", leaders=2),
            ppn=ppn,
            sim=Simulator(compat=kernel_compat),
        )
    finally:
        set_payload_compat(False)
    assert job.elapsed == golden.elapsed


@pytest.mark.parametrize("algorithm", available_algorithms())
def test_hybrid_matches_exact_values_across_algorithms(algorithm):
    """Every registered allreduce: hybrid and exact fidelity produce
    bit-identical result buffers.  Plan-backed algorithms take the
    macro-charged path; the rest must fall back to exact transparently,
    so both classes ride this assertion."""
    layout = (16, 4, 4)
    # SHArP designs require the Cluster-A fabric (Section 6.1).
    cluster = cluster_a if algorithm.startswith("sharp") else cluster_b
    exact = _run(layout, algorithm, fidelity="exact", compat=False, cluster=cluster)
    hybrid = _run(layout, algorithm, fidelity="hybrid", compat=False, cluster=cluster)
    for rank, (want, got) in enumerate(zip(exact.values, hybrid.values)):
        np.testing.assert_array_equal(want, got, err_msg=f"rank {rank}")


@pytest.mark.parametrize("layout", ALL_LAYOUTS[:4], ids=layout_id)
def test_hybrid_timing_is_deterministic(layout):
    """Repeated hybrid runs are bit-identical: same simulated elapsed,
    same macro charges, same buffers.  Only homogeneous layouts are
    macro-eligible; ragged ones must deterministically fall back."""
    nranks, ppn, nodes = layout
    first = _run(layout, "dpml", fidelity="hybrid", compat=False)
    second = _run(layout, "dpml", fidelity="hybrid", compat=False)
    _assert_identical(first, second)
    assert first.counters["macro_events"] == second.counters["macro_events"]
    if nranks == ppn * nodes:
        assert first.counters["macro_events"] > 0
    else:
        assert first.counters["macro_events"] == 0


def test_hybrid_falls_back_to_exact_under_faults():
    """A fault plan disqualifies macro-charging (the charge formulas
    know nothing about stragglers), so hybrid must compose with the
    fault subsystem by degrading to the exact path — sanitizer-clean
    and bit-identical to an exact faulted run, elapsed included."""
    layout = (16, 4, 4)
    plan = FaultPlan(faults=(Straggler(rank=3, factor=8.0),))
    exact = _run(
        layout, "dpml", fidelity="exact", compat=False,
        faults=plan, sanitize=True,
    )
    hybrid = _run(
        layout, "dpml", fidelity="hybrid", compat=False,
        faults=plan, sanitize=True,
    )
    _assert_identical(exact, hybrid)
    assert not exact.reports
    assert not hybrid.reports
    assert hybrid.counters["macro_events"] == 0


def test_counters_reflect_modes():
    """Fast mode actually takes the fast paths; compat mode never does."""
    layout = (16, 4, 4)
    golden = _run(layout, "dpml", compat=True)
    fast = _run(layout, "dpml", compat=False)
    assert golden.counters["nowq_entries"] == 0
    assert golden.counters["pool_reuses"] == 0
    assert fast.counters["nowq_entries"] > 0
    assert fast.counters["pool_reuses"] > 0
    assert (
        fast.counters["events_allocated"] < golden.counters["events_allocated"]
    )
    assert fast.counters["heap_pushes"] < golden.counters["heap_pushes"]
