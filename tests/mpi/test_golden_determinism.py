"""Golden event-order determinism: fast mode vs the seed's compat mode.

The PR-4 hot-path work (now-queue zero-delay dispatch, event pooling,
copy-on-write payload views) must be *invisible* to simulated results:
every :class:`~repro.mpi.runtime.JobResult` — per-rank values and the
simulated elapsed time — must be bit-identical to what the seed's
heap-only, copy-always implementation produces.  Both of those old code
paths are kept alive behind compat switches
(``Simulator(compat=True)`` and ``set_payload_compat(True)``)
precisely so this equivalence stays testable forever.

The grid is the shared conftest layout grid (the same shapes as
``python -m repro.check``), and the sanitized variants re-run the
comparison with the invariant sanitizer attached, since sanitizer
bookkeeping rides the same hot paths.

The hybrid-fidelity tests extend the same contract one layer up:
macro-charging a collective through the cost model may change its
*simulated timing* (that is the point), but never its numerics — every
registered allreduce must return bit-identical result buffers in both
fidelities, hybrid timings must be deterministic run to run, and under
injected faults hybrid must fall back to the exact path cleanly
(sanitizer-silent and bit-identical to an exact faulted run, timing
included).
"""

import numpy as np
import pytest

from tests.conftest import ALL_LAYOUTS, layout_id
from repro.check.conformance import GOLDEN_EXEMPT
from repro.faults.plan import ArrivalSkew, FaultPlan, Straggler
from repro.machine.clusters import cluster_a, cluster_b
from repro.mpi import run_job
from repro.mpi.collectives.registry import available_algorithms
from repro.payload import SUM, make_payload, set_payload_compat
from repro.sim import Simulator

COUNT = 96

#: The golden grid, derived from the registry at collection time; an
#: algorithm may only opt out through the audited GOLDEN_EXEMPT ledger
#: (tests/check/test_registry_conformance.py closes the loop).
GOLDEN_ALGORITHMS = [
    a for a in available_algorithms() if a not in GOLDEN_EXEMPT
]

#: The competing designs added alongside DPML; called out by name so a
#: regression in one of them fails a test naming it.
LITERATURE_FAMILIES = ("dualroot_pipelined", "optimal_rsag", "generalized")


@pytest.fixture(autouse=True)
def _restore_payload_mode():
    yield
    set_payload_compat(False)


def _allreduce_fn(inputs, algorithm, **kw):
    def fn(comm):
        data = make_payload(len(inputs[comm.rank]), data=inputs[comm.rank])
        result = yield from comm.allreduce(data, SUM, algorithm=algorithm, **kw)
        return result.array

    return fn


def _run(
    layout, algorithm, *, compat, sanitize=False, fidelity=None, faults=None,
    cluster=cluster_b, **kw
):
    """One job with kernel *and* payload layer in the given mode."""
    nranks, ppn, nodes = layout
    rng = np.random.default_rng(7)
    inputs = [
        rng.integers(1, 10, COUNT).astype(np.float64) for _ in range(nranks)
    ]
    set_payload_compat(compat)
    try:
        job = run_job(
            cluster(nodes),
            nranks,
            _allreduce_fn(inputs, algorithm, **kw),
            ppn=ppn,
            sim=Simulator(compat=compat),
            sanitize=sanitize,
            fidelity=fidelity,
            faults=faults,
        )
    finally:
        set_payload_compat(False)
    return job


def _assert_identical(golden, fast):
    assert golden.elapsed == fast.elapsed  # bit-identical simulated time
    for rank, (want, got) in enumerate(zip(golden.values, fast.values)):
        np.testing.assert_array_equal(want, got, err_msg=f"rank {rank}")


@pytest.mark.parametrize("layout", ALL_LAYOUTS, ids=layout_id)
def test_fast_mode_matches_seed_on_layout_grid(layout):
    golden = _run(layout, "dpml", compat=True)
    fast = _run(layout, "dpml", compat=False)
    _assert_identical(golden, fast)


@pytest.mark.parametrize("layout", ALL_LAYOUTS[:3], ids=layout_id)
def test_fast_mode_matches_seed_under_sanitizer(layout):
    golden = _run(layout, "dpml", compat=True, sanitize=True)
    fast = _run(layout, "dpml", compat=False, sanitize=True)
    _assert_identical(golden, fast)
    assert not golden.reports
    assert not fast.reports


@pytest.mark.parametrize(
    "algorithm",
    ["dpml", "dpml_pipelined", "dpml_tuned", "mvapich2", "hierarchical", "ring"]
    + list(LITERATURE_FAMILIES),
)
def test_fast_mode_matches_seed_across_algorithms(algorithm):
    layout = (16, 4, 4)
    golden = _run(layout, algorithm, compat=True)
    fast = _run(layout, algorithm, compat=False)
    _assert_identical(golden, fast)


@pytest.mark.parametrize("kernel_compat", [True, False])
@pytest.mark.parametrize("payload_compat", [True, False])
def test_mixed_modes_agree(kernel_compat, payload_compat):
    """The kernel and payload switches are independent: any combination
    of the two produces the same results."""
    layout = (8, 4, 2)
    nranks, ppn, nodes = layout
    rng = np.random.default_rng(3)
    inputs = [
        rng.integers(1, 10, COUNT).astype(np.float64) for _ in range(nranks)
    ]
    golden = _run(layout, "dpml", compat=True, leaders=2)
    set_payload_compat(payload_compat)
    try:
        job = run_job(
            cluster_b(nodes),
            nranks,
            _allreduce_fn(inputs, "dpml", leaders=2),
            ppn=ppn,
            sim=Simulator(compat=kernel_compat),
        )
    finally:
        set_payload_compat(False)
    assert job.elapsed == golden.elapsed


@pytest.mark.parametrize("algorithm", GOLDEN_ALGORITHMS)
def test_hybrid_matches_exact_values_across_algorithms(algorithm):
    """Every registered allreduce: hybrid and exact fidelity produce
    bit-identical result buffers.  Plan-backed algorithms take the
    macro-charged path; the rest must fall back to exact transparently,
    so both classes ride this assertion."""
    layout = (16, 4, 4)
    # SHArP designs require the Cluster-A fabric (Section 6.1).
    cluster = cluster_a if algorithm.startswith("sharp") else cluster_b
    exact = _run(layout, algorithm, fidelity="exact", compat=False, cluster=cluster)
    hybrid = _run(layout, algorithm, fidelity="hybrid", compat=False, cluster=cluster)
    for rank, (want, got) in enumerate(zip(exact.values, hybrid.values)):
        np.testing.assert_array_equal(want, got, err_msg=f"rank {rank}")


@pytest.mark.parametrize("layout", ALL_LAYOUTS[:4], ids=layout_id)
def test_hybrid_timing_is_deterministic(layout):
    """Repeated hybrid runs are bit-identical: same simulated elapsed,
    same macro charges, same buffers.  Only homogeneous layouts are
    macro-eligible; ragged ones must deterministically fall back."""
    nranks, ppn, nodes = layout
    first = _run(layout, "dpml", fidelity="hybrid", compat=False)
    second = _run(layout, "dpml", fidelity="hybrid", compat=False)
    _assert_identical(first, second)
    assert first.counters["macro_events"] == second.counters["macro_events"]
    if nranks == ppn * nodes:
        assert first.counters["macro_events"] > 0
    else:
        assert first.counters["macro_events"] == 0


def test_hybrid_falls_back_to_exact_under_faults():
    """A fault plan disqualifies macro-charging (the charge formulas
    know nothing about stragglers), so hybrid must compose with the
    fault subsystem by degrading to the exact path — sanitizer-clean
    and bit-identical to an exact faulted run, elapsed included."""
    layout = (16, 4, 4)
    plan = FaultPlan(faults=(Straggler(rank=3, factor=8.0),))
    exact = _run(
        layout, "dpml", fidelity="exact", compat=False,
        faults=plan, sanitize=True,
    )
    hybrid = _run(
        layout, "dpml", fidelity="hybrid", compat=False,
        faults=plan, sanitize=True,
    )
    _assert_identical(exact, hybrid)
    assert not exact.reports
    assert not hybrid.reports
    assert hybrid.counters["macro_events"] == 0


class TestLiteratureFamilyGoldens:
    """The competing literature designs ride every determinism contract
    the DPML family does: compat x fidelity bit-identity, session
    reuse, and seeded fault replays."""

    LAYOUT = (16, 4, 4)

    @pytest.mark.parametrize("algorithm", LITERATURE_FAMILIES)
    @pytest.mark.parametrize("fidelity", ["exact", "hybrid"])
    def test_compat_matches_fast_in_both_fidelities(self, algorithm, fidelity):
        """Full compat x fidelity matrix: the seed's heap-only,
        copy-always kernel and the fast kernel agree on values in both
        fidelities (elapsed compared only within one fidelity — hybrid
        intentionally re-times)."""
        golden = _run(self.LAYOUT, algorithm, compat=True, fidelity=fidelity)
        fast = _run(self.LAYOUT, algorithm, compat=False, fidelity=fidelity)
        _assert_identical(golden, fast)

    @pytest.mark.parametrize("algorithm", LITERATURE_FAMILIES)
    def test_hybrid_macro_charges_on_homogeneous_layout(self, algorithm):
        """The new plans actually engage: one macro event per call on
        the homogeneous golden layout, zero on a ragged one."""
        hybrid = _run(self.LAYOUT, algorithm, compat=False, fidelity="hybrid")
        assert hybrid.counters["macro_events"] == 1
        ragged = _run((10, 4, 3), algorithm, compat=False, fidelity="hybrid")
        assert ragged.counters["macro_events"] == 0

    @pytest.mark.parametrize("algorithm", LITERATURE_FAMILIES)
    def test_reused_session_replays_bit_identically(self, algorithm):
        """Back-to-back runs on one reused SimSession are bit-identical
        to each other and to a fresh-machine run."""
        from repro.mpi.runtime import SimSession

        nranks, ppn, nodes = self.LAYOUT
        rng = np.random.default_rng(11)
        inputs = [
            rng.integers(1, 10, COUNT).astype(np.float64)
            for _ in range(nranks)
        ]
        session = SimSession(cluster_b(nodes), nranks, ppn, sanitize=True)
        fn = _allreduce_fn(inputs, algorithm)
        first = session.run(fn)
        second = session.run(fn)
        _assert_identical(first, second)
        fresh = run_job(cluster_b(nodes), nranks, fn, ppn=ppn, sanitize=True)
        _assert_identical(first, fresh)
        assert not first.reports and not second.reports

    @pytest.mark.parametrize("algorithm", LITERATURE_FAMILIES)
    def test_fault_replay_is_seed_deterministic(self, algorithm):
        """The same (plan, seed) pair replays bit-identically — values
        and elapsed — run to run, sanitizer attached."""
        plan = FaultPlan(
            faults=(
                ArrivalSkew(magnitude=2e-4, pattern="random"),
                Straggler(rank=5, factor=4.0),
            )
        )
        nranks, ppn, nodes = self.LAYOUT
        rng = np.random.default_rng(13)
        inputs = [
            rng.integers(1, 10, COUNT).astype(np.float64)
            for _ in range(nranks)
        ]
        runs = [
            run_job(
                cluster_b(nodes), nranks, _allreduce_fn(inputs, algorithm),
                ppn=ppn, sanitize=True, faults=plan, fault_seed=21,
            )
            for _ in range(2)
        ]
        _assert_identical(runs[0], runs[1])
        assert not runs[0].reports
        # ... and the skew actually ran: a fault-free job is faster.
        clean = run_job(
            cluster_b(nodes), nranks, _allreduce_fn(inputs, algorithm),
            ppn=ppn, sanitize=True,
        )
        assert clean.elapsed < runs[0].elapsed


class TestHybridPlanFallbackCounter:
    """Hybrid-mode dispatch of a planless algorithm must be *counted*,
    never silent (the negative-space check of the phase-plan audit)."""

    def test_planless_algorithm_increments_counter(self):
        job = _run((16, 4, 4), "ring", compat=False, fidelity="hybrid")
        assert job.counters["macro_events"] == 0
        assert job.counters["hybrid_plan_fallbacks"] == {"ring": 16}

    def test_planned_algorithm_does_not(self):
        job = _run((16, 4, 4), "dpml", compat=False, fidelity="hybrid")
        assert job.counters["macro_events"] == 1
        assert job.counters["hybrid_plan_fallbacks"] == {}

    def test_exact_mode_keeps_historical_counter_shape(self):
        job = _run((16, 4, 4), "ring", compat=False, fidelity="exact")
        assert "hybrid_plan_fallbacks" not in job.counters


def test_counters_reflect_modes():
    """Fast mode actually takes the fast paths; compat mode never does."""
    layout = (16, 4, 4)
    golden = _run(layout, "dpml", compat=True)
    fast = _run(layout, "dpml", compat=False)
    assert golden.counters["nowq_entries"] == 0
    assert golden.counters["pool_reuses"] == 0
    assert fast.counters["nowq_entries"] > 0
    assert fast.counters["pool_reuses"] > 0
    assert (
        fast.counters["events_allocated"] < golden.counters["events_allocated"]
    )
    assert fast.counters["heap_pushes"] < golden.counters["heap_pushes"]
