"""Golden event-order determinism: fast mode vs the seed's compat mode.

The PR-4 hot-path work (now-queue zero-delay dispatch, event pooling,
copy-on-write payload views) must be *invisible* to simulated results:
every :class:`~repro.mpi.runtime.JobResult` — per-rank values and the
simulated elapsed time — must be bit-identical to what the seed's
heap-only, copy-always implementation produces.  Both of those old code
paths are kept alive behind compat switches
(``Simulator(compat=True)`` and ``set_payload_compat(True)``)
precisely so this equivalence stays testable forever.

The grid is the shared conftest layout grid (the same shapes as
``python -m repro.check``), and the sanitized variants re-run the
comparison with the invariant sanitizer attached, since sanitizer
bookkeeping rides the same hot paths.
"""

import numpy as np
import pytest

from tests.conftest import ALL_LAYOUTS, layout_id
from repro.machine.clusters import cluster_b
from repro.mpi import run_job
from repro.payload import SUM, make_payload, set_payload_compat
from repro.sim import Simulator

COUNT = 96


@pytest.fixture(autouse=True)
def _restore_payload_mode():
    yield
    set_payload_compat(False)


def _allreduce_fn(inputs, algorithm, **kw):
    def fn(comm):
        data = make_payload(len(inputs[comm.rank]), data=inputs[comm.rank])
        result = yield from comm.allreduce(data, SUM, algorithm=algorithm, **kw)
        return result.array

    return fn


def _run(layout, algorithm, *, compat, sanitize=False, **kw):
    """One job with kernel *and* payload layer in the given mode."""
    nranks, ppn, nodes = layout
    rng = np.random.default_rng(7)
    inputs = [
        rng.integers(1, 10, COUNT).astype(np.float64) for _ in range(nranks)
    ]
    set_payload_compat(compat)
    try:
        job = run_job(
            cluster_b(nodes),
            nranks,
            _allreduce_fn(inputs, algorithm, **kw),
            ppn=ppn,
            sim=Simulator(compat=compat),
            sanitize=sanitize,
        )
    finally:
        set_payload_compat(False)
    return job


def _assert_identical(golden, fast):
    assert golden.elapsed == fast.elapsed  # bit-identical simulated time
    for rank, (want, got) in enumerate(zip(golden.values, fast.values)):
        np.testing.assert_array_equal(want, got, err_msg=f"rank {rank}")


@pytest.mark.parametrize("layout", ALL_LAYOUTS, ids=layout_id)
def test_fast_mode_matches_seed_on_layout_grid(layout):
    golden = _run(layout, "dpml", compat=True)
    fast = _run(layout, "dpml", compat=False)
    _assert_identical(golden, fast)


@pytest.mark.parametrize("layout", ALL_LAYOUTS[:3], ids=layout_id)
def test_fast_mode_matches_seed_under_sanitizer(layout):
    golden = _run(layout, "dpml", compat=True, sanitize=True)
    fast = _run(layout, "dpml", compat=False, sanitize=True)
    _assert_identical(golden, fast)
    assert not golden.reports
    assert not fast.reports


@pytest.mark.parametrize(
    "algorithm",
    ["dpml", "dpml_pipelined", "dpml_tuned", "mvapich2", "hierarchical", "ring"],
)
def test_fast_mode_matches_seed_across_algorithms(algorithm):
    layout = (16, 4, 4)
    golden = _run(layout, algorithm, compat=True)
    fast = _run(layout, algorithm, compat=False)
    _assert_identical(golden, fast)


@pytest.mark.parametrize("kernel_compat", [True, False])
@pytest.mark.parametrize("payload_compat", [True, False])
def test_mixed_modes_agree(kernel_compat, payload_compat):
    """The kernel and payload switches are independent: any combination
    of the two produces the same results."""
    layout = (8, 4, 2)
    nranks, ppn, nodes = layout
    rng = np.random.default_rng(3)
    inputs = [
        rng.integers(1, 10, COUNT).astype(np.float64) for _ in range(nranks)
    ]
    golden = _run(layout, "dpml", compat=True, leaders=2)
    set_payload_compat(payload_compat)
    try:
        job = run_job(
            cluster_b(nodes),
            nranks,
            _allreduce_fn(inputs, "dpml", leaders=2),
            ppn=ppn,
            sim=Simulator(compat=kernel_compat),
        )
    finally:
        set_payload_compat(False)
    assert job.elapsed == golden.elapsed


def test_counters_reflect_modes():
    """Fast mode actually takes the fast paths; compat mode never does."""
    layout = (16, 4, 4)
    golden = _run(layout, "dpml", compat=True)
    fast = _run(layout, "dpml", compat=False)
    assert golden.counters["nowq_entries"] == 0
    assert golden.counters["pool_reuses"] == 0
    assert fast.counters["nowq_entries"] > 0
    assert fast.counters["pool_reuses"] > 0
    assert (
        fast.counters["events_allocated"] < golden.counters["events_allocated"]
    )
    assert fast.counters["heap_pushes"] < golden.counters["heap_pushes"]
