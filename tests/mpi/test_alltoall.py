"""Tests for the all-to-all personalized exchange."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MPIError
from repro.machine.clusters import cluster_b
from repro.mpi import run_job
from repro.payload import make_payload


def run_alltoall(nranks, ppn, nodes, algorithm, count=2):
    def fn(comm):
        blocks = [
            make_payload(count, data=np.full(count, comm.rank * 1000.0 + d))
            for d in range(comm.size)
        ]
        out = yield from comm.alltoall(blocks, algorithm=algorithm)
        return [float(b.array[0]) for b in out]

    return run_job(cluster_b(nodes), nranks, fn, ppn=ppn)


@pytest.mark.parametrize("algorithm", ["pairwise", "bruck"])
class TestAlltoall:
    def test_transpose_semantics(self, algorithm):
        job = run_alltoall(8, 4, 2, algorithm)
        for r, got in enumerate(job.values):
            assert got == [s * 1000.0 + r for s in range(8)]

    def test_non_power_of_two(self, algorithm):
        job = run_alltoall(5, 2, 3, algorithm)
        for r, got in enumerate(job.values):
            assert got == [s * 1000.0 + r for s in range(5)]

    def test_single_rank(self, algorithm):
        job = run_alltoall(1, 1, 1, algorithm)
        assert job.values[0] == [0.0]

    def test_wrong_block_count_rejected(self, algorithm):
        def fn(comm):
            with pytest.raises(MPIError, match="one block per destination"):
                yield from comm.alltoall(
                    [make_payload(1)], algorithm=algorithm
                )

        run_job(cluster_b(2), 4, fn, ppn=2)


class TestAlgorithmTradeoffs:
    def test_bruck_fewer_rounds_wins_small_blocks(self):
        """For tiny blocks at scale, log-round Bruck beats pairwise."""
        from repro.machine.machine import Machine
        from repro.mpi.runtime import Runtime
        from repro.payload import SymbolicPayload

        def run(algorithm):
            config = cluster_b(16)

            def fn(comm):
                blocks = [SymbolicPayload(4, 4) for _ in range(comm.size)]
                t0 = comm.now
                yield from comm.alltoall(blocks, algorithm=algorithm)
                return comm.now - t0

            machine = Machine(config, 32, 2)
            return max(Runtime(machine).launch(fn).values)

        assert run("bruck") < run("pairwise")


@given(
    nranks=st.integers(2, 9),
    count=st.integers(1, 8),
    algorithm=st.sampled_from(["pairwise", "bruck"]),
)
@settings(max_examples=25, deadline=None)
def test_property_alltoall_is_transpose(nranks, count, algorithm):
    job = run_alltoall(nranks, min(3, nranks), -(-nranks // min(3, nranks)),
                       algorithm, count=count)
    for r, got in enumerate(job.values):
        assert got == [s * 1000.0 + r for s in range(nranks)]
