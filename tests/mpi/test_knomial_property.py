"""Property-based tests for the k-nomial tree shapes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.clusters import cluster_b
from repro.mpi import run_job
from repro.payload import SUM, DataPayload


@given(
    nranks=st.integers(2, 20),
    radix=st.integers(2, 6),
    root=st.integers(0, 19),
    count=st.integers(1, 16),
)
@settings(max_examples=40, deadline=None)
def test_property_knomial_reduce_bcast_roundtrip(nranks, radix, root, count):
    """reduce(knomial) + bcast(knomial) == allreduce for any (p, k, root)."""
    root = root % nranks
    rng = np.random.default_rng(nranks * 31 + radix)
    inputs = [rng.integers(0, 7, count).astype(float) for _ in range(nranks)]
    ppn = min(4, nranks)
    nodes = -(-nranks // ppn)

    def fn(comm):
        reduced = yield from comm.reduce(
            DataPayload(inputs[comm.rank]), SUM, root=root,
            algorithm="knomial", radix=radix,
        )
        out = yield from comm.bcast(
            reduced, root=root, algorithm="knomial", radix=radix
        )
        return out.array

    job = run_job(cluster_b(nodes), nranks, fn, ppn=ppn)
    expected = SUM.reduce_stack(inputs)
    for v in job.values:
        np.testing.assert_array_equal(v, expected)


@given(nranks=st.integers(2, 16), count=st.integers(1, 12))
@settings(max_examples=25, deadline=None)
def test_property_knomial_radix2_matches_binomial(nranks, count):
    """radix=2 k-nomial is exactly the binomial tree (same results,
    and — as both use the same topology — the same simulated time)."""
    rng = np.random.default_rng(count)
    inputs = [rng.integers(0, 7, count).astype(float) for _ in range(nranks)]
    ppn = min(4, nranks)
    nodes = -(-nranks // ppn)

    def run(algorithm, **kw):
        def fn(comm):
            yield from comm.barrier()
            t0 = comm.now
            out = yield from comm.reduce(
                DataPayload(inputs[comm.rank]), SUM, root=0,
                algorithm=algorithm, **kw,
            )
            return (comm.now - t0, None if out is None else out.array.tolist())

        return run_job(cluster_b(nodes), nranks, fn, ppn=ppn).values

    knomial = run("knomial", radix=2)
    binomial = run("binomial")
    assert knomial[0][1] == binomial[0][1]  # same result at root
