"""Tests for the per-rank message matching engine (MPI semantics)."""

import pytest

from repro.errors import MPIError
from repro.mpi.matching import ANY, EAGER, Envelope, Matcher


def env(src=0, dst=1, tag=0, context=0, seq=0, kind=EAGER, payload="x"):
    return Envelope(src, dst, tag, context, kind, payload, 8, seq)


class TestBasicMatching:
    def test_recv_then_arrive(self):
        m = Matcher(1)
        got = []
        m.post(0, 5, 0, got.append)
        m.arrive(env(tag=5))
        assert len(got) == 1 and got[0].tag == 5

    def test_arrive_then_recv_unexpected(self):
        m = Matcher(1)
        m.arrive(env(tag=5))
        assert m.n_unexpected == 1
        got = []
        m.post(0, 5, 0, got.append)
        assert got[0].was_unexpected
        assert m.n_unexpected == 0

    def test_tag_mismatch_blocks(self):
        m = Matcher(1)
        got = []
        m.post(0, 5, 0, got.append)
        m.arrive(env(tag=6))
        assert not got
        assert m.n_posted == 1
        assert m.n_unexpected == 1

    def test_context_isolation(self):
        m = Matcher(1)
        got = []
        m.post(0, 5, context=7, on_match=got.append)
        m.arrive(env(tag=5, context=8))
        assert not got
        m.arrive(env(tag=5, context=7, seq=1))
        assert len(got) == 1

    def test_wildcard_source(self):
        m = Matcher(1)
        got = []
        m.post(ANY, 5, 0, got.append)
        m.arrive(env(src=3, tag=5))
        assert got and got[0].src == 3

    def test_wildcard_tag(self):
        m = Matcher(1)
        got = []
        m.post(0, ANY, 0, got.append)
        m.arrive(env(tag=42))
        assert got and got[0].tag == 42

    def test_wrong_destination_rejected(self):
        m = Matcher(1)
        with pytest.raises(MPIError):
            m.arrive(env(dst=2))


class TestOrdering:
    def test_unexpected_match_in_arrival_order(self):
        m = Matcher(1)
        m.arrive(env(tag=5, seq=0, payload="first"))
        m.arrive(env(tag=5, seq=1, payload="second"))
        got = []
        m.post(0, 5, 0, got.append)
        assert got[0].payload == "first"

    def test_posted_match_in_post_order(self):
        m = Matcher(1)
        got = []
        m.post(0, 5, 0, lambda e: got.append(("first", e.payload)))
        m.post(0, 5, 0, lambda e: got.append(("second", e.payload)))
        m.arrive(env(tag=5, seq=0, payload="a"))
        m.arrive(env(tag=5, seq=1, payload="b"))
        assert got == [("first", "a"), ("second", "b")]

    def test_out_of_order_arrivals_buffered(self):
        """A later-sent message delivered earlier must not overtake."""
        m = Matcher(1)
        got = []
        m.post(0, ANY, 0, got.append)
        m.arrive(env(tag=2, seq=1, payload="late-sent"))  # delivered first
        assert not got  # held back: seq 0 not yet seen
        m.arrive(env(tag=1, seq=0, payload="early-sent"))
        assert got[0].payload == "early-sent"
        got2 = []
        m.post(0, ANY, 0, got2.append)
        assert got2[0].payload == "late-sent"

    def test_sequence_per_sender(self):
        m = Matcher(2)
        got = []
        m.post(ANY, ANY, 0, got.append)
        m.post(ANY, ANY, 0, got.append)
        m.arrive(Envelope(5, 2, 0, 0, EAGER, "from5", 1, 0))
        m.arrive(Envelope(6, 2, 0, 0, EAGER, "from6", 1, 0))
        assert [e.payload for e in got] == ["from5", "from6"]

    def test_duplicate_sequence_rejected(self):
        m = Matcher(1)
        m.post(0, ANY, 0, lambda e: None)
        m.arrive(env(seq=0))
        with pytest.raises(MPIError):
            m.arrive(env(seq=0))

    def test_long_out_of_order_chain_drains(self):
        m = Matcher(1)
        got = []
        for _ in range(5):
            m.post(0, ANY, 0, got.append)
        for seq in (4, 3, 2, 1):
            m.arrive(env(seq=seq, payload=f"p{seq}"))
        assert not got
        m.arrive(env(seq=0, payload="p0"))
        assert [e.payload for e in got] == ["p0", "p1", "p2", "p3", "p4"]
