"""Transport edge cases: protocol boundaries, bundles, contention."""

import pytest

from repro.machine.clusters import cluster_b
from repro.mpi import run_job
from repro.payload import Bundle, SymbolicPayload, make_payload


class TestProtocolBoundaries:
    def test_zero_byte_message(self):
        def fn(comm):
            if comm.rank == 0:
                yield from comm.send(1, SymbolicPayload(0, 1), tag=1)
                return None
            msg = yield from comm.recv(0, tag=1)
            return msg.nbytes

        res = run_job(cluster_b(2), 2, fn, ppn=1)
        assert res.values[1] == 0

    def test_exact_eager_threshold_is_eager(self):
        """A message of exactly eager_threshold bytes completes its send
        before any receive is posted (i.e. took the eager path)."""
        config = cluster_b(2)
        threshold = config.fabric.eager_threshold

        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(1, SymbolicPayload(threshold, 1), tag=1)
                yield from comm.wait(req)
                done = comm.now
                yield from comm.send(1, SymbolicPayload(0, 1), tag=2)
                return done
            yield comm.sim.timeout(0.01)  # post the recv very late
            yield from comm.recv(0, tag=1)
            yield from comm.recv(0, tag=2)

        res = run_job(config, 2, fn, ppn=1)
        assert res.values[0] < 0.01

    def test_one_byte_over_threshold_is_rendezvous(self):
        """threshold+1 bytes cannot complete before the recv is posted."""
        config = cluster_b(2)
        threshold = config.fabric.eager_threshold

        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(1, SymbolicPayload(threshold + 1, 1), tag=1)
                yield from comm.wait(req)
                return comm.now
            yield comm.sim.timeout(0.01)
            yield from comm.recv(0, tag=1)

        res = run_job(config, 2, fn, ppn=1)
        assert res.values[0] > 0.01  # had to wait for the CTS


class TestBundles:
    def test_bundle_through_eager_path(self):
        def fn(comm):
            if comm.rank == 0:
                bundle = Bundle([make_payload(2, data=[1, 2]),
                                 make_payload(3, data=[3, 4, 5])])
                yield from comm.send(1, bundle, tag=1)
                return None
            msg = yield from comm.recv(0, tag=1)
            return [p.array.tolist() for p in msg.parts]

        res = run_job(cluster_b(2), 2, fn, ppn=1)
        assert res.values[1] == [[1.0, 2.0], [3.0, 4.0, 5.0]]

    def test_bundle_through_rendezvous_path(self):
        config = cluster_b(2)
        big = config.fabric.eager_threshold  # two of these exceed eager

        def fn(comm):
            if comm.rank == 0:
                bundle = Bundle([SymbolicPayload(big, 1), SymbolicPayload(big, 1)])
                yield from comm.send(1, bundle, tag=1)
                return None
            msg = yield from comm.recv(0, tag=1)
            return (len(msg.parts), msg.nbytes)

        res = run_job(config, 2, fn, ppn=1)
        assert res.values[1] == (2, 2 * big)

    def test_bundle_cost_is_sum_of_parts(self):
        def timed(payload):
            def fn(comm):
                if comm.rank == 0:
                    yield from comm.send(1, payload, tag=1)
                    return None
                yield from comm.recv(0, tag=1)
                return comm.now

            return run_job(cluster_b(2), 2, fn, ppn=1).values[1]

        single = timed(SymbolicPayload(8192, 1))
        bundled = timed(Bundle([SymbolicPayload(4096, 1), SymbolicPayload(4096, 1)]))
        assert bundled == pytest.approx(single, rel=1e-9)


class TestContention:
    def test_concurrent_isends_serialize_on_engine(self):
        """Two outstanding sends from one rank share its injection
        engine; from two ranks they run in parallel."""
        def one_sender(comm):
            if comm.rank == 0:
                reqs = [
                    comm.isend(1, SymbolicPayload(8192, 1), tag=i)
                    for i in range(8)
                ]
                yield from comm.waitall(reqs)
                return comm.now
            for i in range(8):
                yield from comm.recv(0, tag=i)

        def two_senders(comm):
            if comm.rank < 2:
                reqs = [
                    comm.isend(2 + comm.rank, SymbolicPayload(8192, 1), tag=i)
                    for i in range(4)
                ]
                yield from comm.waitall(reqs)
                return comm.now
            yield from comm.recv(comm.rank - 2, tag=0)
            for i in range(1, 4):
                yield from comm.recv(comm.rank - 2, tag=i)

        serial = run_job(cluster_b(2), 2, one_sender, ppn=1).values[0]
        parallel = max(
            v for v in run_job(cluster_b(4), 4, two_senders, ppn=1).values
            if v is not None
        )
        assert serial > 1.5 * parallel

    def test_nic_shared_between_ranks_on_node(self):
        """Two senders on ONE node share the NIC; on two nodes they don't."""
        def senders(comm):
            # ranks 0,1 send to ranks 2,3 respectively
            if comm.rank < 2:
                yield from comm.send(comm.rank + 2, SymbolicPayload(1 << 20, 1))
                return comm.now
            yield from comm.recv(comm.rank - 2)
            return None

        # Same source node: ppn=2, nodes [0]=ranks 0,1; receivers on 2,3.
        shared = run_job(cluster_b(4), 4, senders, ppn=2).values
        shared_t = max(v for v in shared if v is not None)
        # Different source nodes: ppn=1.
        split = run_job(cluster_b(4), 4, senders, ppn=1).values
        split_t = max(v for v in split if v is not None)
        assert shared_t >= split_t  # sharing can only hurt
