"""Tests for rank placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.machine.config import MachineConfig, NodeConfig
from repro.machine.topology import Placement


def _config(nodes=4, sockets=2, cps=4, placement="scatter"):
    return MachineConfig(
        nodes=nodes,
        node=NodeConfig(sockets=sockets, cores_per_socket=cps),
        placement=placement,
    )


class TestPlacement:
    def test_block_across_nodes(self):
        p = Placement(_config(), nranks=16, ppn=8)
        assert [p.node_of(r) for r in range(16)] == [0] * 8 + [1] * 8

    def test_scatter_alternates_sockets(self):
        p = Placement(_config(placement="scatter"), nranks=8, ppn=8)
        sockets = [p.loc(r).socket for r in range(8)]
        assert sockets == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_bunch_fills_socket_zero_first(self):
        p = Placement(_config(placement="bunch"), nranks=8, ppn=8)
        sockets = [p.loc(r).socket for r in range(8)]
        assert sockets == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_default_ppn_is_full_subscription(self):
        p = Placement(_config(), nranks=16)
        assert p.ppn == 8

    def test_oversubscription_rejected(self):
        with pytest.raises(ConfigError):
            Placement(_config(), nranks=16, ppn=9)

    def test_too_many_nodes_needed_rejected(self):
        with pytest.raises(ConfigError):
            Placement(_config(nodes=2), nranks=32, ppn=8)

    def test_partial_last_node(self):
        p = Placement(_config(), nranks=10, ppn=8)
        assert p.nodes_used == 2
        assert p.ranks_on_node(1) == [8, 9]

    def test_ranks_on_node_empty_beyond_job(self):
        p = Placement(_config(), nranks=8, ppn=8)
        assert p.ranks_on_node(1) == []

    def test_ranks_on_socket(self):
        p = Placement(_config(placement="scatter"), nranks=8, ppn=8)
        assert p.ranks_on_socket(0, 0) == [0, 2, 4, 6]
        assert p.ranks_on_socket(0, 1) == [1, 3, 5, 7]

    def test_same_node(self):
        p = Placement(_config(), nranks=16, ppn=8)
        assert p.same_node(0, 7)
        assert not p.same_node(7, 8)

    def test_rank_out_of_range(self):
        p = Placement(_config(), nranks=8, ppn=8)
        with pytest.raises(ConfigError):
            p.loc(8)

    @given(
        nranks=st.integers(1, 64),
        ppn=st.integers(1, 8),
        placement=st.sampled_from(["scatter", "bunch"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_locs_are_unique_and_valid(self, nranks, ppn, placement):
        nodes = -(-nranks // ppn)
        cfg = _config(nodes=max(nodes, 1), placement=placement)
        if ppn > cfg.node.cores:
            return
        p = Placement(cfg, nranks=nranks, ppn=ppn)
        seen = set()
        for r in range(nranks):
            loc = p.loc(r)
            key = (loc.node, loc.socket, loc.core)
            assert key not in seen, "two ranks on one core"
            seen.add(key)
            assert 0 <= loc.socket < cfg.node.sockets
            assert 0 <= loc.core < cfg.node.cores_per_socket
            assert loc.local_rank == r % ppn
