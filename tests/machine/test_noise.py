"""Tests for the noise model and the statistics harness."""

import numpy as np
import pytest

from repro.bench.harness import allreduce_latency, allreduce_latency_stats
from repro.errors import ConfigError, ReproError
from repro.machine.clusters import cluster_b
from repro.machine.noise import NoiseModel


class TestNoiseModel:
    def test_zero_sigma_is_identity(self):
        nm = NoiseModel(sigma=0.0)
        assert nm.perturb(1.5) == 1.5

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError):
            NoiseModel(sigma=-0.1)

    def test_same_seed_same_stream(self):
        a = NoiseModel(sigma=0.1, seed=42)
        b = NoiseModel(sigma=0.1, seed=42)
        assert [a.perturb(1.0) for _ in range(5)] == [
            b.perturb(1.0) for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a = NoiseModel(sigma=0.1, seed=1)
        b = NoiseModel(sigma=0.1, seed=2)
        assert a.perturb(1.0) != b.perturb(1.0)

    def test_reset_restarts_stream(self):
        nm = NoiseModel(sigma=0.1, seed=7)
        first = nm.perturb(1.0)
        nm.reset()
        assert nm.perturb(1.0) == first

    def test_multiplier_stays_positive(self):
        nm = NoiseModel(sigma=0.5, seed=0)
        assert all(nm.perturb(1.0) > 0 for _ in range(100))

    def test_median_preserving(self):
        nm = NoiseModel(sigma=0.1, seed=0)
        samples = np.array([nm.perturb(1.0) for _ in range(4000)])
        assert np.median(samples) == pytest.approx(1.0, rel=0.02)

    def test_zero_sigma_does_not_consume_rng(self):
        # The sigma == 0 fast path must not draw: a model that spent a
        # while at zero sigma still replays the same stream afterwards.
        nm = NoiseModel(sigma=0.1, seed=5)
        reference = [nm.perturb(1.0) for _ in range(3)]
        nm.reset()
        nm.sigma = 0.0
        for _ in range(10):
            nm.perturb(1.0)
        nm.sigma = 0.1
        assert [nm.perturb(1.0) for _ in range(3)] == reference

    def test_nonpositive_service_passes_through(self):
        # Queues use sentinel / zero-length charges; jitter must not
        # touch them (a lognormal multiple of a negative time would
        # silently corrupt horizons).
        nm = NoiseModel(sigma=0.3, seed=0)
        assert nm.perturb(0.0) == 0.0
        assert nm.perturb(-1.0) == -1.0
        reference = NoiseModel(sigma=0.3, seed=0).perturb(1.0)
        assert nm.perturb(1.0) == reference  # and drew nothing

    def test_clone_restarts_same_seed(self):
        nm = NoiseModel(sigma=0.1, seed=9)
        consumed = [nm.perturb(1.0) for _ in range(4)]
        twin = nm.clone()
        # The clone starts from the seed, not from the consumed state.
        assert [twin.perturb(1.0) for _ in range(4)] == consumed
        assert twin.sigma == nm.sigma and twin.seed == nm.seed

    def test_clones_with_distinct_seeds_are_independent(self):
        base = NoiseModel(sigma=0.1, seed=0)
        streams = [
            [base.clone(seed=s).perturb(1.0) for _ in range(4)]
            for s in (1, 2, 3)
        ]
        assert len({tuple(s) for s in streams}) == 3
        # ... and cloning never disturbs the parent's own stream.
        assert base.perturb(1.0) == NoiseModel(sigma=0.1, seed=0).perturb(1.0)


class TestNoisyRuns:
    def test_noisy_run_is_reproducible(self):
        kw = dict(ppn=4, iterations=1, warmup=0)
        a = allreduce_latency(
            cluster_b(2), "dpml", 8192, noise=NoiseModel(0.05, seed=3), **kw
        )
        b = allreduce_latency(
            cluster_b(2), "dpml", 8192, noise=NoiseModel(0.05, seed=3), **kw
        )
        assert a == b

    def test_noise_changes_latency(self):
        kw = dict(ppn=4, iterations=1, warmup=0)
        clean = allreduce_latency(cluster_b(2), "dpml", 8192, **kw)
        noisy = allreduce_latency(
            cluster_b(2), "dpml", 8192, noise=NoiseModel(0.2, seed=1), **kw
        )
        assert noisy != clean

    def test_stats_mean_near_deterministic(self):
        clean = allreduce_latency(cluster_b(2), "dpml", 16384, ppn=4)
        stats = allreduce_latency_stats(
            cluster_b(2), "dpml", 16384, ppn=4, repeats=5, sigma=0.03
        )
        assert stats.mean == pytest.approx(clean, rel=0.1)
        assert stats.min <= stats.mean <= stats.max
        assert stats.std >= 0
        assert stats.ci95 >= 0

    def test_zero_sigma_stats_degenerate(self):
        stats = allreduce_latency_stats(
            cluster_b(2), "ring", 1024, ppn=2, repeats=3, sigma=0.0
        )
        assert stats.std == 0.0
        assert stats.min == stats.max == stats.mean

    def test_zero_repeats_rejected(self):
        with pytest.raises(ReproError):
            allreduce_latency_stats(
                cluster_b(2), "ring", 64, ppn=2, repeats=0
            )
