"""Tests for the link-level fat-tree fabric."""

import dataclasses

import numpy as np
import pytest

from repro.apps.osu import multi_pair_bandwidth
from repro.errors import ConfigError
from repro.machine.clusters import cluster_b
from repro.machine.fattree import FatTree, FatTreeConfig
from repro.mpi import run_job
from repro.payload import SUM, make_payload
from repro.sim import Simulator


def with_tree(config, **topo_kw):
    return dataclasses.replace(config, topology=FatTreeConfig(**topo_kw))


class TestConfig:
    def test_defaults_valid(self):
        FatTreeConfig()

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            FatTreeConfig(nodes_per_leaf=0)
        with pytest.raises(ConfigError):
            FatTreeConfig(spines=0)
        with pytest.raises(ConfigError):
            FatTreeConfig(hop_latency=-1.0)

    def test_oversubscription_ratio(self):
        cfg = FatTreeConfig(nodes_per_leaf=16, spines=4, link_byte_time=8e-11)
        # 16 nodes at NIC rate vs 4 links at the same rate -> 4x.
        assert cfg.oversubscription(8e-11) == pytest.approx(4.0)


class TestRouting:
    def test_leaf_assignment(self):
        tree = FatTree(Simulator(), FatTreeConfig(nodes_per_leaf=4, spines=2), 10)
        assert tree.leaves == 3
        assert tree.leaf_of(0) == 0
        assert tree.leaf_of(3) == 0
        assert tree.leaf_of(4) == 1
        assert tree.leaf_of(9) == 2
        with pytest.raises(ConfigError):
            tree.leaf_of(10)

    def test_same_leaf_has_no_fabric_stages(self):
        tree = FatTree(Simulator(), FatTreeConfig(nodes_per_leaf=4, spines=2), 8)
        assert tree.fabric_stages(0, 3) == []

    def test_inter_leaf_crosses_up_and_down(self):
        tree = FatTree(Simulator(), FatTreeConfig(nodes_per_leaf=4, spines=2), 8)
        stages = tree.fabric_stages(0, 5)
        assert len(stages) == 2
        spine = tree.spine_for(5)
        assert stages[0].queue is tree.up[0][spine]
        assert stages[1].queue is tree.down[1][spine]

    def test_routing_is_deterministic(self):
        tree = FatTree(Simulator(), FatTreeConfig(nodes_per_leaf=2, spines=4), 16)
        assert tree.spine_for(7) == tree.spine_for(7) == 7 % 4


class TestBehaviour:
    def test_allreduce_correct_with_topology(self):
        config = with_tree(cluster_b(4), nodes_per_leaf=2, spines=1)

        def fn(comm):
            data = make_payload(20, data=np.arange(20.0) * (comm.rank + 1))
            out = yield from comm.allreduce(data, SUM, algorithm="rabenseifner")
            return out.array

        job = run_job(config, 8, fn, ppn=2)
        expected = np.arange(20.0) * sum(r + 1 for r in range(8))
        for v in job.values:
            np.testing.assert_array_equal(v, expected)

    def test_oversubscription_throttles_cross_leaf_bandwidth(self):
        base = cluster_b(2)
        # One thin spine shared by a whole leaf: heavy oversubscription.
        congested = with_tree(
            base, nodes_per_leaf=1, spines=1, link_byte_time=8e-10
        )
        free = multi_pair_bandwidth(base, pairs=8, nbytes=1 << 20)
        slow = multi_pair_bandwidth(congested, pairs=8, nbytes=1 << 20)
        assert slow < free * 0.5

    def test_same_leaf_traffic_unaffected_by_thin_spine(self):
        base = cluster_b(2)
        # Both nodes under one leaf: the thin uplinks are never crossed.
        same_leaf = with_tree(
            base, nodes_per_leaf=2, spines=1, link_byte_time=8e-9
        )
        free = multi_pair_bandwidth(base, pairs=4, nbytes=1 << 18)
        routed = multi_pair_bandwidth(same_leaf, pairs=4, nbytes=1 << 18)
        assert routed == pytest.approx(free, rel=0.01)

    def test_hop_latency_adds_to_small_message_time(self):
        from repro.bench.harness import allreduce_latency

        base = cluster_b(4)
        treed = with_tree(
            base, nodes_per_leaf=1, spines=2, hop_latency=5e-6
        )
        flat = allreduce_latency(base, "recursive_doubling", 8, ppn=1)
        routed = allreduce_latency(treed, "recursive_doubling", 8, ppn=1)
        assert routed > flat + 5e-6
