"""Tests for the SHArP switch-tree model."""

import pytest

from repro.errors import ConfigError
from repro.machine.config import SharpConfig
from repro.machine.sharp import SharpTree
from repro.sim import Simulator


def tree(nodes=16, **cfg_kw):
    return SharpTree(Simulator(), SharpConfig(**cfg_kw), nodes)


class TestGeometry:
    def test_depth_grows_with_leaves(self):
        t = tree(radix=4)
        assert t.depth(1) == 1
        assert t.depth(4) == 1
        assert t.depth(5) == 2
        assert t.depth(16) == 2
        assert t.depth(17) == 3

    def test_depth_invalid_leaves(self):
        with pytest.raises(ConfigError):
            tree().depth(0)

    def test_segments(self):
        t = tree(max_payload=256)
        assert t.segments(0) == 1
        assert t.segments(1) == 1
        assert t.segments(256) == 1
        assert t.segments(257) == 2
        assert t.segments(4096) == 16

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigError):
            SharpTree(Simulator(), SharpConfig(), 0)


class TestReductionTime:
    def test_small_payload_pays_op_latency_once(self):
        t = tree()
        cfg = t.config
        expected = 2 * t.depth(16) * cfg.hop_latency + cfg.op_latency
        assert t.reduction_time(16, 8) == pytest.approx(expected)

    def test_large_payload_pays_per_segment(self):
        t = tree()
        t_small = t.reduction_time(16, 256)
        t_large = t.reduction_time(16, 4096)
        assert t_large > t_small + 10 * t.config.segment_overhead

    def test_monotone_in_leaves_and_bytes(self):
        t = tree(radix=4)
        assert t.reduction_time(64, 64) > t.reduction_time(4, 64)
        assert t.reduction_time(16, 2048) > t.reduction_time(16, 64)


class TestConcurrencyLimit:
    def test_operations_queue_on_contexts(self):
        sim = Simulator()
        t = SharpTree(sim, SharpConfig(max_outstanding=2), 8)
        finish_times = []

        def op():
            yield from t.operation(8, 64)
            finish_times.append(sim.now)

        for _ in range(4):
            sim.process(op())
        sim.run()
        one_op = t.reduction_time(8, 64)
        # First two run concurrently, second two queue behind them.
        assert finish_times[0] == pytest.approx(one_op)
        assert finish_times[1] == pytest.approx(one_op)
        assert finish_times[2] == pytest.approx(2 * one_op)
        assert finish_times[3] == pytest.approx(2 * one_op)

    def test_context_released_after_operation(self):
        sim = Simulator()
        t = SharpTree(sim, SharpConfig(max_outstanding=1), 8)

        def op():
            yield from t.operation(8, 8)

        sim.process(op())
        sim.run()
        assert t.contexts.in_use == 0


class TestStreamingV2:
    def test_streaming_time_linear_in_bytes(self):
        from repro.machine.config import SharpConfig
        t = tree(streaming=True, stream_byte_time=1e-10)
        base = t.reduction_time(16, 0)
        one_mb = t.reduction_time(16, 1 << 20)
        assert one_mb - base == pytest.approx((1 << 20) * 1e-10)

    def test_streaming_beats_segmented_for_large(self):
        v1 = tree(streaming=False)
        v2 = tree(streaming=True)
        assert v2.reduction_time(16, 1 << 20) < v1.reduction_time(16, 1 << 20)

    def test_streaming_equivalent_for_tiny(self):
        v1 = tree(streaming=False)
        v2 = tree(streaming=True)
        # A single segment op vs a tiny stream: same order of magnitude.
        assert v2.reduction_time(16, 64) == pytest.approx(
            v1.reduction_time(16, 64), rel=0.5
        )

    def test_negative_stream_rate_rejected(self):
        from repro.errors import ConfigError
        from repro.machine.config import SharpConfig
        with pytest.raises(ConfigError):
            SharpConfig(stream_byte_time=-1.0)
