"""Tests for machine configuration and cluster presets."""

import pytest

from repro.errors import ConfigError
from repro.machine.clusters import (
    CLUSTERS,
    cluster_a,
    cluster_b,
    cluster_c,
    cluster_d,
    get_cluster,
)
from repro.machine.config import FabricConfig, MachineConfig, NodeConfig, SharpConfig


class TestNodeConfig:
    def test_defaults_valid(self):
        node = NodeConfig()
        assert node.cores == node.sockets * node.cores_per_socket

    def test_zero_sockets_rejected(self):
        with pytest.raises(ConfigError):
            NodeConfig(sockets=0)

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigError):
            NodeConfig(copy_latency=-1.0)

    def test_intersocket_factor_below_one_rejected(self):
        with pytest.raises(ConfigError):
            NodeConfig(intersocket_byte_factor=0.5)


class TestFabricConfig:
    def test_bandwidth_helpers(self):
        fabric = FabricConfig(proc_byte_time=1e-9, nic_byte_time=1e-10)
        assert fabric.proc_bandwidth() == pytest.approx(1e9)
        assert fabric.nic_bandwidth() == pytest.approx(1e10)

    def test_zero_chunk_rejected(self):
        with pytest.raises(ConfigError):
            FabricConfig(chunk_bytes=0)

    def test_negative_pio_rejected(self):
        with pytest.raises(ConfigError):
            FabricConfig(pio_byte_time=-1.0)

    def test_negative_dma_threshold_rejected(self):
        with pytest.raises(ConfigError):
            FabricConfig(dma_threshold=-1)


class TestSharpConfig:
    def test_defaults_valid(self):
        SharpConfig()

    def test_radix_one_rejected(self):
        with pytest.raises(ConfigError):
            SharpConfig(radix=1)

    def test_zero_payload_rejected(self):
        with pytest.raises(ConfigError):
            SharpConfig(max_payload=0)


class TestMachineConfig:
    def test_max_ranks(self):
        cfg = MachineConfig(nodes=4, node=NodeConfig(sockets=2, cores_per_socket=3))
        assert cfg.max_ranks == 24

    def test_with_nodes(self):
        cfg = cluster_b(8)
        assert cfg.with_nodes(4).nodes == 4
        assert cfg.with_nodes(4).fabric == cfg.fabric

    def test_bad_placement_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(placement="weird")


class TestClusterPresets:
    def test_all_presets_build(self):
        for factory in CLUSTERS.values():
            cfg = factory()
            assert cfg.nodes >= 1

    def test_paper_node_counts(self):
        assert cluster_a().nodes == 40
        assert cluster_b().nodes == 648
        assert cluster_c().nodes == 752
        assert cluster_d().nodes == 508

    def test_sharp_only_on_cluster_a(self):
        assert cluster_a().sharp is not None
        assert cluster_b().sharp is None
        assert cluster_c().sharp is None
        assert cluster_d().sharp is None

    def test_fabric_families(self):
        assert cluster_a().fabric.name == "ib-edr"
        assert cluster_b().fabric.name == "ib-edr"
        assert cluster_c().fabric.name == "omni-path"
        assert cluster_d().fabric.name == "omni-path-knl"

    def test_knl_is_single_socket_manycore(self):
        node = cluster_d().node
        assert node.sockets == 1
        assert node.cores_per_socket >= 64

    def test_omnipath_has_pio_dma_split_ib_does_not(self):
        assert cluster_c().fabric.pio_byte_time is not None
        assert cluster_d().fabric.pio_byte_time is not None
        assert cluster_b().fabric.pio_byte_time is None

    def test_node_limit_enforced(self):
        with pytest.raises(ConfigError):
            cluster_a(41)
        with pytest.raises(ConfigError):
            cluster_b(0)

    def test_get_cluster_aliases(self):
        assert get_cluster("a").name == "cluster-a"
        assert get_cluster("Cluster-B", 8).nodes == 8
        with pytest.raises(ConfigError):
            get_cluster("z")
