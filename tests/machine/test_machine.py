"""Tests for the live Machine: charged primitives and cost helpers."""

import pytest

from repro.errors import ConfigError
from repro.machine.clusters import cluster_a, cluster_b, cluster_c
from repro.machine.config import FabricConfig, MachineConfig, NodeConfig
from repro.machine.machine import Machine
from repro.sim import Simulator


def make_machine(nranks=8, ppn=4, nodes=2, **cfg_kw):
    config = MachineConfig(
        nodes=nodes, node=NodeConfig(sockets=2, cores_per_socket=4), **cfg_kw
    )
    return Machine(config, nranks, ppn)


def run_gen(machine, gen):
    proc = machine.sim.process(gen)
    machine.sim.run()
    return machine.sim.now


class TestChargedPrimitives:
    def test_compute_time_scales_with_bytes(self):
        m1 = make_machine()
        t1 = run_gen(m1, m1.compute(0, 1000))
        m2 = make_machine()
        t2 = run_gen(m2, m2.compute(0, 100000))
        assert t2 > t1 * 10

    def test_compute_scales_with_combines(self):
        m1 = make_machine()
        t1 = run_gen(m1, m1.compute(0, 10000, combines=1))
        m2 = make_machine()
        t2 = run_gen(m2, m2.compute(0, 10000, combines=8))
        assert t2 == pytest.approx(t1 * 8, rel=0.05)

    def test_zero_byte_compute_is_free(self):
        m = make_machine()
        assert run_gen(m, m.compute(0, 0)) == 0.0

    def test_shm_copy_has_startup_floor(self):
        m = make_machine()
        t = run_gen(m, m.shm_copy(0, 0))
        assert t >= m.config.node.copy_latency

    def test_cross_socket_copy_costs_more(self):
        m1 = make_machine()
        t_local = run_gen(m1, m1.shm_copy(0, 100000, cross_socket=False))
        m2 = make_machine()
        t_cross = run_gen(m2, m2.shm_copy(0, 100000, cross_socket=True))
        assert t_cross > t_local

    def test_concurrent_compute_serializes_on_engine(self):
        m = make_machine()

        def one(rank):
            yield from m.compute(rank, 1_000_000)

        def both_same_rank():
            a = m.sim.process(one(0))
            b = m.sim.process(one(0))
            yield m.sim.all_of([a, b])

        serial = run_gen(m, both_same_rank())
        m2 = make_machine()

        def one2(rank):
            yield from m2.compute(rank, 1_000_000)

        def different_ranks():
            a = m2.sim.process(one2(0))
            b = m2.sim.process(one2(1))
            yield m2.sim.all_of([a, b])

        parallel = run_gen(m2, different_ranks())
        # Engine time fully serializes (2x); the shared memory engine
        # keeps the ratio a bit below 2.
        assert serial > 1.5 * parallel

    def test_gather_sync_scales_with_parties(self):
        m = make_machine()
        t1 = run_gen(m, m.gather_sync(0, 1))
        m2 = make_machine()
        t28 = run_gen(m2, m2.gather_sync(0, 28))
        assert t28 > t1


class TestFabricHelpers:
    def test_injection_service_has_overhead_floor(self):
        m = Machine(cluster_b(2), 2, 1)
        assert m.injection_service(0) == pytest.approx(
            cluster_b(2).fabric.send_overhead
        )

    def test_pio_dma_split_on_omnipath(self):
        m = Machine(cluster_c(2), 2, 1)
        fabric = cluster_c(2).fabric
        small = m.injection_service(1024)
        # PIO rate applies below the threshold.
        assert small == pytest.approx(
            fabric.send_overhead + 1024 * fabric.pio_byte_time
        )
        big = m.injection_service(1 << 20)
        assert big == pytest.approx(
            fabric.send_overhead + (1 << 20) * fabric.proc_byte_time
        )

    def test_ib_has_no_pio_split(self):
        m = Machine(cluster_b(2), 2, 1)
        fabric = cluster_b(2).fabric
        assert m.injection_service(1024) == pytest.approx(
            fabric.send_overhead + 1024 * fabric.proc_byte_time
        )

    def test_nic_chunks_cover_message(self):
        m = Machine(cluster_b(2), 2, 1)
        chunk = cluster_b(2).fabric.chunk_bytes
        for nbytes in (0, 1, chunk, chunk + 1, 5 * chunk + 17):
            chunks = m.nic_chunks(nbytes)
            assert sum(chunks) == max(0, nbytes)
            assert all(c <= chunk for c in chunks)

    def test_nic_service_message_floor(self):
        m = Machine(cluster_b(2), 2, 1)
        fabric = cluster_b(2).fabric
        assert m.nic_service(0) == fabric.nic_msg_time
        assert m.nic_service(1 << 20) > fabric.nic_msg_time


class TestTopologyQueries:
    def test_same_socket(self):
        m = make_machine(nranks=8, ppn=4)  # scatter: sockets alternate
        assert m.same_socket(0, 2)
        assert not m.same_socket(0, 1)
        assert not m.same_socket(0, 4)  # different node

    def test_require_sharp(self):
        with_sharp = Machine(cluster_a(2), 4, 2)
        assert with_sharp.require_sharp() is with_sharp.sharp
        without = Machine(cluster_b(2), 4, 2)
        with pytest.raises(ConfigError):
            without.require_sharp()

    def test_machine_rejects_too_many_ranks(self):
        with pytest.raises(ConfigError):
            Machine(cluster_b(1), 64, 32)

    def test_shared_simulator(self):
        sim = Simulator()
        m = Machine(cluster_b(2), 4, 2, sim=sim)
        assert m.sim is sim
