"""End-to-end traffic runs: determinism, isolation, scheduling, metering."""

import dataclasses

import pytest

from repro.errors import TrafficError
from repro.machine.clusters import get_cluster
from repro.machine.fattree import FatTreeConfig
from repro.traffic import (
    JobSpec,
    SharedFabric,
    TenantMachine,
    TrafficTrace,
    poisson_trace,
    run_traffic,
)


def treed_config(nodes=8, nodes_per_leaf=4, **kw):
    return dataclasses.replace(
        get_cluster("a", nodes=nodes),
        topology=FatTreeConfig(nodes_per_leaf=nodes_per_leaf, **kw),
    )


def two_job_trace() -> TrafficTrace:
    return TrafficTrace(
        jobs=(
            JobSpec(app="osu", arrival=0.0, nodes=2, ppn=4, nbytes=32768,
                    iterations=2),
            JobSpec(app="hpcg", arrival=0.0, nodes=2, ppn=4, nbytes=16384,
                    iterations=2),
        )
    )


class TestDeterminism:
    def test_fresh_vs_fresh(self):
        trace = poisson_trace(jobs=4, rate=2e4, seed=7)
        a = run_traffic(trace, cluster="b", seed=1, sanitize=True)
        b = run_traffic(trace, cluster="b", seed=1, sanitize=True)
        assert a.to_canonical_json() == b.to_canonical_json()

    def test_fresh_vs_reused_fabric(self):
        trace = poisson_trace(jobs=4, rate=3e4, seed=3)
        config = treed_config()
        fabric = SharedFabric(config, sanitize=True)
        first = run_traffic(trace, fabric=fabric, placement="spread", seed=2)
        reused = run_traffic(trace, fabric=fabric, placement="spread", seed=2)
        fresh = run_traffic(
            trace, config=config, placement="spread", seed=2, sanitize=True
        )
        assert first.to_canonical_json() == reused.to_canonical_json()
        assert first.to_canonical_json() == fresh.to_canonical_json()

    def test_placement_changes_result(self):
        trace = poisson_trace(jobs=4, rate=3e4, seed=3)
        config = treed_config()
        packed = run_traffic(trace, config=config, placement="packed")
        spread = run_traffic(trace, config=config, placement="spread")
        assert packed.to_canonical_json() != spread.to_canonical_json()


class TestCounterIsolation:
    """Satellite: concurrent disjoint tenants == the same jobs run solo."""

    @pytest.mark.parametrize("placement", ["packed", "spread"])
    def test_concurrent_equals_solo(self, placement):
        config = treed_config()
        trace = two_job_trace()
        together = run_traffic(
            trace, config=config, placement=placement, sanitize=True
        )
        assert together.n_jobs == 2
        for i, job in enumerate(trace.jobs):
            solo = run_traffic(
                TrafficTrace(jobs=(job,)),
                config=config,
                placement=placement,
                sanitize=True,
            )
            concurrent_record = together.job(i)
            solo_record = solo.job(0)
            # Work submitted is congestion-invariant: every counter the
            # record reports (engine + per-node NIC/mem deltas) matches
            # the idle-fabric reference exactly, floats included.
            assert concurrent_record.counters == solo_record.counters
            # And with disjoint node sets there is no cross-tenant queue
            # at all, so even the latencies replay exactly.
            assert (
                concurrent_record.latency_summary()
                == solo_record.latency_summary()
            )

    def test_contended_tenants_still_count_identically(self):
        # A deliberately thin spine: spread tenants do slow each other
        # down, but what each *submits* is still exactly its solo work.
        config = treed_config(spines=1, link_byte_time=3.2e-10)
        job = JobSpec(
            app="osu", arrival=0.0, nodes=2, ppn=2, nbytes=1 << 20,
            iterations=1,
        )
        trace = TrafficTrace(jobs=(job, job, job, job))
        together = run_traffic(trace, config=config, placement="spread")
        solo = run_traffic(
            TrafficTrace(jobs=(job,)), config=config, placement="spread"
        )
        for i in range(4):
            assert together.job(i).counters == solo.job(0).counters
        # ... while the contention itself is real and visible.
        assert together.elapsed > solo.elapsed * 1.5


class TestScheduling:
    def test_backlog_is_fifo(self):
        # 4-node fabric; job0 fills it, jobs 1-2 queue and launch in order.
        trace = TrafficTrace(
            jobs=(
                JobSpec(app="osu", arrival=0.0, nodes=4, ppn=2),
                JobSpec(app="osu", arrival=1e-5, nodes=1, ppn=2),
                JobSpec(app="osu", arrival=2e-5, nodes=4, ppn=2),
            )
        )
        result = run_traffic(trace, cluster="a", nodes=4)
        j0, j1, j2 = result.jobs
        assert j0.queue_wait == 0.0
        # Strict FIFO: the small job 1 waited for job 0 even though no
        # nodes were free anyway, and job 2 never jumped it.
        assert j1.started >= j0.finished
        assert j2.started >= j1.started
        assert result.elapsed == max(j.finished for j in result.jobs)

    def test_job_wider_than_fabric_rejected(self):
        trace = TrafficTrace(
            jobs=(JobSpec(app="osu", arrival=0.0, nodes=8, ppn=1),)
        )
        with pytest.raises(TrafficError, match="fabric"):
            run_traffic(trace, cluster="a", nodes=4)

    def test_empty_trace(self):
        result = run_traffic(TrafficTrace(jobs=()), cluster="a", nodes=2)
        assert result.n_jobs == 0
        assert result.elapsed == 0.0
        assert len(result.series) == 1  # the final done-sample

    def test_unknown_placement(self):
        trace = poisson_trace(jobs=2, rate=1e4, seed=0)
        with pytest.raises(TrafficError, match="placement"):
            run_traffic(trace, cluster="a", placement="greedy")


class TestMetering:
    def test_series_shape(self):
        trace = poisson_trace(jobs=4, rate=3e4, seed=1)
        result = run_traffic(
            trace, config=treed_config(), interval=5e-5, sanitize=True
        )
        assert result.series, "scraper produced no samples"
        times = [s["t"] for s in result.series]
        assert times == sorted(times)
        for sample in result.series:
            assert set(sample) == {
                "t", "jobs", "free_nodes", "links", "nic", "matcher",
                "sharp", "tenants",
            }
            # 2 leaves x 8 spines (default) x up+down directions.
            assert sample["links"]["n_links"] == 32
        # The mid-run samples see running tenants.
        assert any(s["jobs"]["running"] > 0 for s in result.series)
        # The last sample is the drain instant: everything finished.
        assert result.series[-1]["jobs"]["finished"] == 4

    def test_flat_fabric_has_no_link_series(self):
        trace = poisson_trace(jobs=2, rate=3e4, seed=1)
        result = run_traffic(trace, cluster="b")
        assert all(s["links"] is None for s in result.series)

    def test_canonical_json_round_trips(self):
        import json

        trace = poisson_trace(jobs=2, rate=3e4, seed=5)
        result = run_traffic(trace, cluster="a")
        blob = json.loads(result.to_canonical_json())
        assert blob["schema"] == 1
        assert blob["suite"] == "repro.traffic"
        assert blob["trace_hash"] == trace.trace_hash()
        assert len(blob["jobs"]) == 2
        assert blob["jobs"][0]["counters"]["engine"]["jobs"] > 0


class TestFaultComposition:
    def test_degraded_fabric_under_load(self):
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.from_dict(
            {
                "faults": [
                    {
                        "kind": "node-slowdown", "node": 1, "factor": 4.0,
                        "start": 0.0, "duration": 5e-4,
                    }
                ]
            }
        )
        trace = poisson_trace(jobs=3, rate=3e4, seed=5)
        clean = run_traffic(trace, cluster="a", nodes=8, sanitize=True)
        hurt = run_traffic(
            trace, cluster="a", nodes=8, sanitize=True, faults=plan
        )
        assert hurt.elapsed > clean.elapsed
        assert hurt.job(0).counters["faults"]["plan"] == plan.plan_hash()
        again = run_traffic(
            trace, cluster="a", nodes=8, sanitize=True, faults=plan
        )
        assert hurt.to_canonical_json() == again.to_canonical_json()


class TestTenantMachine:
    def test_validation(self):
        fabric = SharedFabric(get_cluster("a", nodes=4))
        with pytest.raises(TrafficError, match="duplicates"):
            TenantMachine(fabric, (0, 0), 4, 2)
        with pytest.raises(TrafficError, match="outside fabric"):
            TenantMachine(fabric, (3, 9), 4, 2)
        with pytest.raises(TrafficError, match="needs"):
            TenantMachine(fabric, (0, 1, 2), 4, 2)

    def test_global_node_translation(self):
        fabric = SharedFabric(get_cluster("a", nodes=8))
        tenant = TenantMachine(fabric, (5, 2), 4, 2)
        assert [tenant.node_of(r) for r in range(4)] == [5, 5, 2, 2]
        assert tenant.loc(3).node == 2

    def test_reset_refused(self):
        fabric = SharedFabric(get_cluster("a", nodes=4))
        tenant = TenantMachine(fabric, (0, 1), 4, 2)
        with pytest.raises(TrafficError, match="single-job"):
            tenant.reset()
