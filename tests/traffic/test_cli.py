"""The ``python -m repro.traffic`` command line."""

import json

import pytest

from repro.traffic import TrafficTrace
from repro.traffic.cli import main as traffic_cli


def test_example_emits_valid_trace(capsys):
    assert traffic_cli(["example"]) == 0
    trace = TrafficTrace.from_json(capsys.readouterr().out)
    assert len(trace.jobs) == 4
    arrivals = [job.arrival for job in trace.jobs]
    assert arrivals == sorted(arrivals)


def test_describe_trace_file(tmp_path, capsys):
    assert traffic_cli(["example"]) == 0
    path = tmp_path / "trace.json"
    path.write_text(capsys.readouterr().out)
    assert traffic_cli(["describe", "--trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "traffic trace" in out and "osu#0" in out


def test_describe_generated_poisson(capsys):
    assert traffic_cli(["describe", "--poisson", "3", "--rate", "20000"]) == 0
    assert "3 job(s)" in capsys.readouterr().out


def test_run_writes_byte_stable_canonical_output(tmp_path, capsys):
    args = [
        "run", "--poisson", "3", "--rate", "30000", "--cluster", "a",
        "--sanitize", "--leaf-nodes", "2",
    ]
    out1 = tmp_path / "a.json"
    out2 = tmp_path / "b.json"
    assert traffic_cli(args + ["--output", str(out1)]) == 0
    assert "traffic run" in capsys.readouterr().out
    assert traffic_cli(args + ["--output", str(out2)]) == 0
    assert out1.read_bytes() == out2.read_bytes()
    blob = json.loads(out1.read_text())
    assert blob["suite"] == "repro.traffic"
    assert len(blob["jobs"]) == 3


def test_run_with_fault_plan(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(
        json.dumps(
            {
                "faults": [
                    {
                        "kind": "node-slowdown", "node": 0, "factor": 2.0,
                        "start": 0.0, "duration": 1e-3,
                    }
                ]
            }
        )
    )
    assert traffic_cli(
        [
            "run", "--poisson", "2", "--rate", "20000", "--cluster", "a",
            "--faults", str(plan_path),
        ]
    ) == 0
    assert "traffic run" in capsys.readouterr().out


def test_missing_trace_file():
    with pytest.raises(SystemExit, match="no such trace"):
        traffic_cli(["describe", "--trace", "/nonexistent/trace.json"])


def test_invalid_trace_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"jobs": [{"app": "warp", "arrival": 0.0}]}')
    with pytest.raises(SystemExit, match="invalid traffic trace"):
        traffic_cli(["run", "--trace", str(path)])


def test_missing_fault_plan(tmp_path):
    with pytest.raises(SystemExit, match="no such fault plan"):
        traffic_cli(
            ["run", "--poisson", "2", "--faults", str(tmp_path / "no.json")]
        )
