"""Trace schema: validation, JSON round-trip, hashing, Poisson generator."""

import json

import pytest

from repro.errors import TrafficError
from repro.traffic import (
    APP_KINDS,
    JobSpec,
    TrafficTrace,
    default_mix,
    poisson_trace,
)


def small_trace() -> TrafficTrace:
    return TrafficTrace(
        jobs=(
            JobSpec(app="osu", arrival=0.0, nodes=2, ppn=4, nbytes=4096),
            JobSpec(
                app="sgd", arrival=1e-4, nodes=2, ppn=2, nbytes=65536,
                iterations=2, algorithm="rabenseifner", name="train",
            ),
            JobSpec(app="hpcg", arrival=2e-4, nodes=1, ppn=4, leaders=2),
        )
    )


class TestJobSpec:
    def test_defaults(self):
        job = JobSpec(app="osu", arrival=0.0, nodes=2, ppn=4)
        assert job.nranks == 8
        assert job.algorithm == "dpml"
        assert job.label(3) == "osu#3"

    def test_named_label(self):
        job = JobSpec(app="sgd", arrival=0.0, nodes=1, ppn=1, name="train")
        assert job.label(0) == "train#0"

    @pytest.mark.parametrize(
        "bad",
        [
            {"app": "nope"},
            {"arrival": -1.0},
            {"nodes": 0},
            {"ppn": 0},
            {"nbytes": 2},
            {"iterations": 0},
            {"leaders": 0},
        ],
    )
    def test_validation(self, bad):
        kwargs = dict(app="osu", arrival=0.0, nodes=2, ppn=4)
        kwargs.update(bad)
        with pytest.raises(TrafficError):
            JobSpec(**kwargs)

    def test_apps_closed_vocabulary(self):
        assert set(APP_KINDS) == {"osu", "sgd", "hpcg", "miniamr"}


class TestTrace:
    def test_round_trip(self):
        trace = small_trace()
        again = TrafficTrace.from_json(trace.to_json())
        assert again == trace
        assert again.trace_hash() == trace.trace_hash()

    def test_hash_sensitive_to_content(self):
        trace = small_trace()
        other = TrafficTrace(jobs=trace.jobs[:-1])
        assert other.trace_hash() != trace.trace_hash()

    def test_arrivals_must_be_sorted(self):
        with pytest.raises(TrafficError, match="non-decreasing"):
            TrafficTrace(
                jobs=(
                    JobSpec(app="osu", arrival=1e-3, nodes=1, ppn=1),
                    JobSpec(app="osu", arrival=0.0, nodes=1, ppn=1),
                )
            )

    def test_unknown_fields_rejected(self):
        data = json.loads(small_trace().to_json())
        data["jobs"][0]["turbo"] = True
        with pytest.raises(TrafficError, match="unknown"):
            TrafficTrace.from_dict(data)
        with pytest.raises(TrafficError, match="unknown"):
            TrafficTrace.from_dict({"jobs": [], "extra": 1})

    def test_max_nodes(self):
        assert small_trace().max_nodes() == 2
        assert TrafficTrace(jobs=()).max_nodes() == 0

    def test_describe_mentions_every_job(self):
        text = small_trace().describe()
        assert "osu#0" in text and "train#1" in text and "hpcg#2" in text

    def test_load(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(small_trace().to_json())
        assert TrafficTrace.load(str(path)) == small_trace()


class TestPoisson:
    def test_deterministic(self):
        a = poisson_trace(jobs=12, rate=1e4, seed=3)
        b = poisson_trace(jobs=12, rate=1e4, seed=3)
        assert a == b
        assert a.trace_hash() == b.trace_hash()

    def test_seed_changes_stream(self):
        a = poisson_trace(jobs=12, rate=1e4, seed=3)
        b = poisson_trace(jobs=12, rate=1e4, seed=4)
        assert a.trace_hash() != b.trace_hash()

    def test_arrivals_sorted_and_apps_from_mix(self):
        trace = poisson_trace(jobs=20, rate=5e4, seed=0)
        arrivals = [job.arrival for job in trace.jobs]
        assert arrivals == sorted(arrivals)
        assert {job.app for job in trace.jobs} <= set(APP_KINDS)

    def test_custom_mix(self):
        mix = [{"app": "osu", "nodes": 1, "ppn": 2, "weight": 1.0}]
        trace = poisson_trace(jobs=5, rate=1e4, seed=1, mix=mix)
        assert all(job.app == "osu" for job in trace.jobs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0, "rate": 1e4},
            {"jobs": 4, "rate": 0.0},
            {"jobs": 4, "rate": 1e4, "mix": []},
            {"jobs": 4, "rate": 1e4, "mix": [{"app": "osu", "weight": -1.0}]},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(TrafficError):
            poisson_trace(**kwargs)

    def test_default_mix_covers_all_apps(self):
        assert {t["app"] for t in default_mix()} == set(APP_KINDS)
