"""Placement policies: shapes, determinism, and refusal semantics."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic import PLACEMENT_POLICIES
from repro.traffic.placement import place_job


def leaf_of_4(node: int) -> int:
    """8 nodes, 4 per leaf: nodes 0-3 on leaf 0, 4-7 on leaf 1."""
    return node // 4


def test_policy_vocabulary():
    assert PLACEMENT_POLICIES == ("packed", "spread", "random", "leader-aware")


def test_unknown_policy():
    with pytest.raises(TrafficError, match="unknown placement"):
        place_job("best-fit", {0, 1}, 1, leaf_of=leaf_of_4, leaves=2)


def test_insufficient_free_returns_none():
    for policy in PLACEMENT_POLICIES:
        got = place_job(
            policy, {0, 1}, 3, leaf_of=leaf_of_4, leaves=2,
            rng=np.random.default_rng(0),
        )
        assert got is None


def test_packed_takes_lowest():
    assert place_job(
        "packed", {5, 2, 7, 0}, 2, leaf_of=leaf_of_4, leaves=2
    ) == (0, 2)


def test_spread_round_robins_leaves():
    got = place_job(
        "spread", set(range(8)), 4, leaf_of=leaf_of_4, leaves=2
    )
    # Two nodes from each leaf, breadth-first.
    assert got == (0, 1, 4, 5)
    assert {leaf_of_4(n) for n in got} == {0, 1}


def test_leader_aware_packs_fullest_leaf():
    # Leaf 0 has 2 free, leaf 1 has 3 free: leader-aware fills leaf 1.
    got = place_job(
        "leader-aware", {0, 1, 4, 5, 6}, 3, leaf_of=leaf_of_4, leaves=2
    )
    assert got == (4, 5, 6)


def test_random_needs_rng_and_is_seeded():
    with pytest.raises(TrafficError, match="rng"):
        place_job("random", set(range(8)), 2, leaf_of=leaf_of_4, leaves=2)
    a = place_job(
        "random", set(range(8)), 3, leaf_of=leaf_of_4, leaves=2,
        rng=np.random.default_rng(7),
    )
    b = place_job(
        "random", set(range(8)), 3, leaf_of=leaf_of_4, leaves=2,
        rng=np.random.default_rng(7),
    )
    assert a == b
    assert len(set(a)) == 3


def test_all_policies_return_sorted_disjoint_subsets():
    free = {1, 3, 4, 6, 7}
    for policy in PLACEMENT_POLICIES:
        got = place_job(
            policy, set(free), 3, leaf_of=leaf_of_4, leaves=2,
            rng=np.random.default_rng(1),
        )
        assert got == tuple(sorted(got))
        assert set(got) <= free
