"""Tests for the differential oracle (numpy + cost-model cross-check)."""

import json

import pytest

from repro.check import reports as R
from repro.check.oracle import DEFAULT_BAND, check_allreduce, predictable
from repro.check.sanitizer import Sanitizer
from repro.core.model import CostModel
from repro.machine.clusters import cluster_b
from repro.mpi.collectives.registry import register_allreduce
from repro.payload import DataPayload


@pytest.fixture
def broken_allreduce():
    """Register a deliberately wrong allreduce under a test-only name."""

    def broken(comm, payload, op, tag_base=0, **kwargs):
        out = yield from comm.allreduce(
            payload, op, algorithm="recursive_doubling"
        )
        return DataPayload(out.array + 1.0)  # off-by-one everywhere

    register_allreduce("_test_broken", broken)
    yield "_test_broken"
    from repro.mpi.collectives.registry import _REGISTRIES

    del _REGISTRIES["allreduce"]["_test_broken"]


class TestNumericDifferential:
    def test_correct_run_is_clean(self):
        outcome = check_allreduce(
            cluster_b(2), "dpml", nranks=8, ppn=4, count=64
        )
        assert outcome.ok
        assert outcome.ratio is not None
        assert DEFAULT_BAND[0] <= outcome.ratio <= DEFAULT_BAND[1]

    def test_wrong_answer_reports_numeric_mismatch(self, broken_allreduce):
        outcome = check_allreduce(
            cluster_b(2), broken_allreduce, nranks=8, ppn=4, count=16
        )
        assert not outcome.ok
        assert [r.kind for r in outcome.reports] == [R.NUMERIC_MISMATCH]
        assert outcome.reports[0].details["rank"] == 0
        assert outcome.predicted is None  # model does not describe it


class TestCostDifferential:
    def test_absurd_band_reports_divergence(self):
        outcome = check_allreduce(
            cluster_b(2), "dpml", nranks=8, ppn=4, count=64,
            band=(1e6, 2e6),
        )
        assert [r.kind for r in outcome.reports] == [R.COST_DIVERGENCE]
        report = outcome.reports[0]
        assert report.details["ratio"] == outcome.ratio
        assert report.details["predicted"] == outcome.predicted

    def test_partial_last_node_skips_cost_check(self):
        outcome = check_allreduce(
            cluster_b(3), "dpml", nranks=10, ppn=4, count=64,
            band=(1e6, 2e6),  # would trip if the check ran
        )
        assert outcome.ok
        assert outcome.predicted is None

    def test_shared_sanitizer_accumulates_across_runs(self):
        sanitizer = Sanitizer(strict=False)
        for count in (16, 64):
            check_allreduce(
                cluster_b(2), "dpml", nranks=8, ppn=4, count=count,
                band=(1e6, 2e6), sanitizer=sanitizer,
            )
        assert len(sanitizer.by_kind(R.COST_DIVERGENCE)) == 2

    @pytest.mark.parametrize("algorithm", predictable)
    def test_every_predictable_algorithm_within_default_band(self, algorithm):
        # `predictable` is audited against the registry by
        # tests/check/test_registry_conformance.py, so this
        # parametrization tracks registry growth automatically.
        outcome = check_allreduce(
            cluster_b(2), algorithm, nranks=8, ppn=4, count=256
        )
        assert outcome.ok, (algorithm, [str(r) for r in outcome.reports])
        assert outcome.ratio is not None, algorithm


class TestPredictAllreduce:
    def test_hierarchical_is_single_leader_dpml(self):
        model = CostModel(a=1e-6, b=1e-9, a_shm=1e-7, b_shm=1e-10, c=1e-10)
        assert model.predict_allreduce(
            "hierarchical", p=16, h=4, n=1024
        ) == model.t_dpml(16, 4, 1, 1024)

    def test_dpml_default_leaders_clamped_to_ppn(self):
        model = CostModel(a=1e-6, b=1e-9, a_shm=1e-7, b_shm=1e-10, c=1e-10)
        # ppn = 2 < default 4 leaders -> l = 2
        assert model.predict_allreduce(
            "dpml", p=8, h=4, n=1024
        ) == model.t_dpml(8, 4, 2, 1024)

    def test_one_rank_per_node_degenerates_to_flat(self):
        model = CostModel(a=1e-6, b=1e-9, a_shm=1e-7, b_shm=1e-10, c=1e-10)
        assert model.predict_allreduce(
            "dpml", p=4, h=4, n=1024
        ) == model.t_recursive_doubling(4, 1024)

    def test_undescribed_algorithms_return_none(self):
        model = CostModel(a=1e-6, b=1e-9, a_shm=1e-7, b_shm=1e-10, c=1e-10)
        for name in ("ring", "mvapich2", "sharp_node_leader", "adaptive"):
            assert model.predict_allreduce(name, p=16, h=4, n=1024) is None


class TestCheckCli:
    def test_oracle_only_run_is_clean(self, capsys):
        from repro.check.cli import main

        assert main(["--skip-validate", "--counts", "64"]) == 0
        out = capsys.readouterr().out
        assert "0 divergent" in out

    def test_json_report_written(self, tmp_path, capsys):
        from repro.check.cli import main

        path = tmp_path / "findings.json"
        code = main(
            ["--skip-validate", "--counts", "16", "--json", str(path)]
        )
        assert code == 0
        findings = json.loads(path.read_text())
        assert findings["validate"] is None
        assert all(case["ok"] for case in findings["oracle"])

    def test_absurd_band_fails_with_nonzero_exit(self, capsys):
        from repro.check.cli import main

        assert main(
            ["--skip-validate", "--counts", "64", "--band", "1e6,2e6"]
        ) == 1
        captured = capsys.readouterr()
        assert "cost-model-divergence" in captured.err
        assert "divergent" in captured.out

    def test_bad_band_rejected(self):
        from repro.check.cli import main

        with pytest.raises(SystemExit):
            main(["--band", "nonsense"])
