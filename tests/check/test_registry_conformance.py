"""Meta-tests: the validation strategy is closed over the registry.

:func:`repro.check.conformance.audit_registry` re-derives, from the
live allreduce registry, that every algorithm has oracle coverage, a
calibrated cost band (or a reasoned exemption), golden-determinism
coverage, and a consistent phase plan.  These tests assert the audit
is clean on the shipped registry — and, just as importantly, that it
*does* fail when someone registers an algorithm without wiring its
coverage, or lets an exemption ledger rot.
"""

import pytest

from repro.check.conformance import (
    COST_MODEL_EXEMPT,
    GOLDEN_EXEMPT,
    audit_registry,
)
from repro.check.oracle import predictable
from repro.core.phases import PhasePlan
from repro.mpi.collectives.registry import (
    _PHASE_PLANS,
    _REGISTRIES,
    available_algorithms,
    register_allreduce,
    register_phase_plan,
)


@pytest.fixture
def stub_allreduce():
    """Register a bare stub allreduce (no oracle wiring) temporarily."""

    def stub(comm, payload, op, tag_base=0, **kwargs):
        out = yield from comm.allreduce(
            payload, op, algorithm="recursive_doubling"
        )
        return out

    register_allreduce("_stub", stub)
    yield "_stub"
    del _REGISTRIES["allreduce"]["_stub"]


class TestAuditClean:
    def test_shipped_registry_passes(self):
        assert audit_registry() == []

    def test_ledgers_partition_the_registry(self):
        """predictable + COST_MODEL_EXEMPT is exactly the registry."""
        registered = set(available_algorithms())
        priced = set(predictable) & registered
        exempt = set(COST_MODEL_EXEMPT)
        assert priced | exempt == registered
        assert priced & exempt == set()

    def test_literature_families_are_priced_not_exempt(self):
        for name in ("dualroot_pipelined", "optimal_rsag", "generalized"):
            assert name in predictable
            assert name not in COST_MODEL_EXEMPT

    def test_golden_grid_covers_everything(self):
        """No algorithm is silently excused from golden determinism."""
        from tests.mpi.test_golden_determinism import GOLDEN_ALGORITHMS

        assert set(GOLDEN_ALGORITHMS) | set(GOLDEN_EXEMPT) == set(
            available_algorithms()
        )


class TestAuditCatchesViolations:
    def test_stub_registration_fails_the_audit(self, stub_allreduce):
        violations = audit_registry()
        assert any(stub_allreduce in v for v in violations)
        assert any("calibrated cost band" in v for v in violations)

    def test_stub_with_reasoned_exemption_passes(
        self, stub_allreduce, monkeypatch
    ):
        monkeypatch.setitem(
            COST_MODEL_EXEMPT, stub_allreduce, "test stub, oracle-only"
        )
        assert audit_registry() == []

    def test_stale_exemption_entry_is_flagged(self, monkeypatch):
        monkeypatch.setitem(COST_MODEL_EXEMPT, "_never_registered", "gone")
        violations = audit_registry()
        assert any("stale ledger entry" in v for v in violations)

    def test_empty_exemption_reason_is_flagged(self, monkeypatch):
        monkeypatch.setitem(COST_MODEL_EXEMPT, "ring", "   ")
        violations = audit_registry()
        assert any("no reason string" in v for v in violations)

    def test_missing_phase_plan_for_priced_algorithm_is_flagged(
        self, monkeypatch
    ):
        monkeypatch.delitem(_PHASE_PLANS, "generalized")
        violations = audit_registry()
        assert any(
            "generalized" in v and "no phase plan" in v for v in violations
        )

    def test_plan_name_mismatch_is_flagged(self, stub_allreduce, monkeypatch):
        monkeypatch.setitem(
            COST_MODEL_EXEMPT, stub_allreduce, "test stub, oracle-only"
        )
        plan = _PHASE_PLANS["dpml"]
        monkeypatch.setitem(_PHASE_PLANS, stub_allreduce, plan)
        violations = audit_registry()
        assert any("names must match" in v for v in violations)

    def test_planned_but_unpriced_algorithm_is_flagged(
        self, stub_allreduce, monkeypatch
    ):
        monkeypatch.setitem(
            COST_MODEL_EXEMPT, stub_allreduce, "test stub, oracle-only"
        )
        register_phase_plan(
            stub_allreduce,
            PhasePlan(stub_allreduce, ("exchange",), lambda model, **kw: ()),
        )
        try:
            violations = audit_registry()
        finally:
            del _PHASE_PLANS[stub_allreduce]
        assert any("unauditable" in v for v in violations)
