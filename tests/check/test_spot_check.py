"""The hybrid-fidelity spot-check oracle.

``spot_check_hybrid`` is what keeps macro-charging honest: the exact
coroutine path is the golden reference, and every sampled configuration
must show (a) bit-identical result buffers across fidelities and (b)
per-phase charges within the calibrated drift band of the exact phase
windows.  These tests run the oracle across the plan-backed algorithms
and verify it actually *fails* when the band is made impossible.
"""

import pytest

from repro.check.oracle import DEFAULT_BAND, predictable, spot_check_hybrid
from repro.check.reports import PHASE_DIVERGENCE
from repro.machine.clusters import cluster_b


@pytest.mark.parametrize("algorithm", predictable)
def test_spot_check_passes_for_plan_backed_algorithms(algorithm):
    outcome = spot_check_hybrid(
        cluster_b(4), algorithm, nranks=16, ppn=4, count=256
    )
    assert outcome.ok, [r.to_dict() for r in outcome.reports]
    assert outcome.charged
    assert outcome.hybrid_elapsed > 0.0
    assert outcome.exact_elapsed > 0.0
    # Every bounded phase carries an in-band ratio.
    for row in outcome.phases:
        assert row["ok"]
        if row["ratio"] is not None:
            lo, hi = DEFAULT_BAND
            assert lo <= row["ratio"] <= hi


def test_spot_check_respects_explicit_leaders():
    outcome = spot_check_hybrid(
        cluster_b(4), "dpml", nranks=16, ppn=4, count=512, leaders=2
    )
    assert outcome.ok, [r.to_dict() for r in outcome.reports]


def test_spot_check_flags_impossible_band():
    """With a band no real ratio can satisfy, the oracle must report
    phase divergence — proving the check has teeth."""
    outcome = spot_check_hybrid(
        cluster_b(4), "dpml", nranks=16, ppn=4, count=256,
        band=(1000.0, 2000.0),
    )
    assert not outcome.ok
    assert any(r.kind == PHASE_DIVERGENCE for r in outcome.reports)


def test_spot_check_outcome_serialises():
    outcome = spot_check_hybrid(
        cluster_b(2), "recursive_doubling", nranks=8, ppn=4, count=128
    )
    data = outcome.to_dict()
    assert data["ok"] == outcome.ok
    assert data["algorithm"] == "recursive_doubling"
    assert data["charged"] is True
    assert isinstance(data["phases"], list)


def test_spot_check_is_deterministic():
    first = spot_check_hybrid(cluster_b(4), "dpml", nranks=16, ppn=4, count=256)
    second = spot_check_hybrid(cluster_b(4), "dpml", nranks=16, ppn=4, count=256)
    assert first.to_dict() == second.to_dict()
