"""Negative-path tests: every violation class produces its typed report.

Each test injects one invariant violation into an otherwise healthy
simulation and asserts that the sanitizer records a
:class:`~repro.check.reports.SanitizerReport` of the right ``kind`` —
the fatal ones alongside the pre-existing ``MPIError`` /
``SimulationError``, the leak-style ones at finalize.
"""

import heapq

import pytest

from repro.check import reports as R
from repro.check.sanitizer import Sanitizer
from repro.errors import DeadlockError, MPIError, SanitizerError, SimulationError
from repro.machine.clusters import cluster_b
from repro.machine.machine import Machine
from repro.mpi.runtime import Runtime, run_job
from repro.mpi.shm import ShmRegion
from repro.payload import make_payload
from repro.sim import Simulator
from repro.sim.resources import Resource


@pytest.fixture
def san():
    """A collecting (non-raising) sanitizer to inspect after the fault."""
    return Sanitizer(strict=False)


def _runtime(san, nranks=2, ppn=1):
    machine = Machine(
        cluster_b(2), nranks, ppn, sim=Simulator(sanitize=san)
    )
    return Runtime(machine)


class TestGateViolations:
    def test_reopen_of_completed_gate(self, san):
        runtime = _runtime(san)
        _, last = runtime.gate("g", parties=1)
        assert last
        with pytest.raises(MPIError, match="late arrival"):
            runtime.gate("g", parties=1)
        assert san.kinds() == {R.GATE_REOPEN}

    def test_reopen_of_completed_gate_exchange(self, san):
        runtime = _runtime(san)
        runtime.gate_exchange("x", 1, "a")
        with pytest.raises(MPIError, match="late arrival"):
            runtime.gate_exchange("x", 1, "b")
        assert san.kinds() == {R.GATE_REOPEN}

    def test_party_count_disagreement(self, san):
        runtime = _runtime(san)
        runtime.gate("g", parties=3)
        with pytest.raises(MPIError, match="parties"):
            runtime.gate("g", parties=2)
        (report,) = san.by_kind(R.GATE_PARTY_MISMATCH)
        assert report.details["opened_for"] == 3
        assert report.details["expects"] == 2

    def test_party_count_disagreement_gate_exchange(self, san):
        runtime = _runtime(san)
        runtime.gate_exchange("x", 3, "a")
        with pytest.raises(MPIError, match="parties"):
            runtime.gate_exchange("x", 2, "b")
        assert R.GATE_PARTY_MISMATCH in san.kinds()

    def test_overfill_still_reported(self, san):
        # An overfill can only be reached past the party-mismatch check
        # by a gate whose count was corrupted mid-flight; inject that
        # state directly to exercise the hook.
        runtime = _runtime(san)
        runtime.gate("g", parties=3)
        runtime._gates["g"]["arrived"] = 3
        with pytest.raises(MPIError, match="overfilled"):
            runtime.gate("g", parties=3)
        assert R.GATE_OVERFILL in san.kinds()

    def test_unsanitized_mismatch_keeps_overfill_semantics(self):
        # Without a sanitizer the historical behaviour is preserved:
        # the disagreement surfaces as an overfill, not a new error.
        runtime = Runtime(Machine(cluster_b(2), 2, 1))
        runtime.gate("g", parties=3)
        with pytest.raises(MPIError, match="overfilled"):
            runtime.gate("g", parties=1)

    def test_gate_left_open_leaks_at_finalize(self, san):
        def fn(comm):
            if comm.rank == 0:
                comm.runtime.gate(("leak",), parties=2)
            yield comm.sim.timeout(1e-9)

        result = run_job(cluster_b(2), 2, fn, ppn=1, sanitize=san)
        (report,) = result.reports
        assert report.kind == R.GATE_LEAK
        assert report.details["arrived"] == 1
        assert report.details["parties"] == 2


class TestShmViolations:
    def _region(self, san):
        return ShmRegion(Simulator(sanitize=san), name="n0")

    def test_overlapping_partitions(self, san):
        region = self._region(san)
        region.put("a", make_payload(8), span=("f", 0, 8, 16))
        with pytest.raises(MPIError, match="overlaps"):
            region.put("b", make_payload(8), span=("f", 4, 12, 16))
        (report,) = san.by_kind(R.SHM_OVERLAP)
        assert report.details["other_key"] == "a"

    def test_out_of_bounds_partition(self, san):
        region = self._region(san)
        with pytest.raises(MPIError, match="outside frame extent"):
            region.put("a", make_payload(12), span=("f", 8, 20, 16))
        assert san.kinds() == {R.SHM_OUT_OF_BOUNDS}

    def test_frame_extent_disagreement(self, san):
        region = self._region(san)
        region.put("a", make_payload(8), span=("f", 0, 8, 16))
        with pytest.raises(MPIError, match="opened with"):
            region.put("b", make_payload(4), span=("f", 8, 12, 12))
        assert R.SHM_OUT_OF_BOUNDS in san.kinds()

    def test_span_length_mismatch(self, san):
        region = self._region(san)
        with pytest.raises(MPIError, match="claims span"):
            region.put("a", make_payload(3), span=("f", 0, 5, 10))
        assert san.kinds() == {R.SHM_SPAN_MISMATCH}

    def test_double_write_recorded(self, san):
        region = self._region(san)
        region.put("k", 1)
        with pytest.raises(MPIError, match="written twice"):
            region.put("k", 2)
        assert san.kinds() == {R.SHM_DOUBLE_WRITE}

    def test_stale_read_of_consumed_key(self, san):
        region = self._region(san)
        sim = region.sim
        region.put("k", "v")

        def consumer():
            yield region.take("k")

        sim.process(consumer())
        sim.run()
        with pytest.raises(MPIError, match="fully consumed"):
            region.read("k", readers=1)
        assert san.kinds() == {R.SHM_STALE_READ}

    def test_reader_fanout_disagreement(self, san):
        region = self._region(san)
        region.put("k", "v")
        region.read("k", readers=2)
        with pytest.raises(MPIError, match="readers=3"):
            region.read("k", readers=3)
        (report,) = san.by_kind(R.SHM_READER_MISMATCH)
        assert report.details["declared"] == 2

    def test_unconsumed_value_leaks_at_finalize(self, san):
        def fn(comm):
            if comm.rank == 0:
                comm.runtime.shm_region(0).put(("orphan",), make_payload(4))
            yield comm.sim.timeout(1e-9)

        result = run_job(cluster_b(2), 2, fn, ppn=2, sanitize=san)
        (report,) = result.reports
        assert report.kind == R.SHM_LEAK
        assert "('orphan',)" in report.details["keys"][0]


class TestMatcherViolations:
    def test_leaked_receive_at_finalize(self, san):
        def fn(comm):
            if comm.rank == 0:
                comm.irecv(source=1, tag=77)  # never matched
            yield comm.sim.timeout(1e-9)

        result = run_job(cluster_b(2), 2, fn, ppn=1, sanitize=san)
        (report,) = result.reports
        assert report.kind == R.MATCHER_LEAK
        assert report.details["rank"] == 0
        assert report.details["posted"] == [{"src": 1, "tag": 77, "context": 0}]

    def test_leaked_unexpected_message_at_finalize(self, san):
        def fn(comm):
            if comm.rank == 0:
                yield from comm.send(1, make_payload(4), tag=5)
            else:
                yield comm.sim.timeout(1e-9)  # never posts the recv

        result = run_job(cluster_b(2), 2, fn, ppn=2, sanitize=san)
        kinds = {r.kind for r in result.reports}
        assert kinds == {R.MATCHER_LEAK}
        (report,) = result.reports
        assert report.details["rank"] == 1
        assert report.details["n_unexpected"] == 1

    def test_strict_sanitizer_raises_sanitizer_error(self):
        def fn(comm):
            if comm.rank == 0:
                comm.irecv(source=1, tag=77)
            yield comm.sim.timeout(1e-9)

        with pytest.raises(SanitizerError) as info:
            run_job(cluster_b(2), 2, fn, ppn=1, sanitize=True)
        assert [r.kind for r in info.value.reports] == [R.MATCHER_LEAK]


class TestDeadlockDetection:
    def test_drained_heap_reports_wait_graph(self, san):
        def fn(comm):
            if comm.rank == 0:
                yield comm.sim.timeout(1e-6)
            else:
                yield from comm.recv(source=0, tag=9)  # never sent

        with pytest.raises(DeadlockError) as info:
            run_job(cluster_b(2), 2, fn, ppn=1, sanitize=san)
        assert "rank1" in info.value.wait_graph
        (report,) = san.by_kind(R.DEADLOCK)
        assert "rank1" in report.details["wait_graph"]
        # Enrichment: the blocked rank's pending receive is attached.
        leak = report.details["matchers"]["rank1"]
        assert leak["posted"] == [{"src": 0, "tag": 9, "context": 0}]

    def test_wait_graph_names_blocked_request(self, san):
        """Requests are events, and the wait graph spells out which MPI
        operation a blocked rank was stuck in."""

        def fn(comm):
            if comm.rank == 0:
                yield comm.sim.timeout(1e-6)
            else:
                yield from comm.recv(source=0, tag=9)

        with pytest.raises(DeadlockError) as info:
            run_job(cluster_b(2), 2, fn, ppn=1, sanitize=san)
        assert info.value.wait_graph["rank1"] == "request:recv(src=0, tag=9)"

    def test_unsanitized_deadlock_has_empty_wait_graph(self):
        def fn(comm):
            yield from comm.recv(source=(comm.rank + 1) % comm.size, tag=1)

        with pytest.raises(DeadlockError) as info:
            run_job(cluster_b(2), 2, fn, ppn=1, sanitize=False)
        assert info.value.wait_graph == {}


class TestKernelViolations:
    def test_heap_time_regression(self, san):
        sim = Simulator(sanitize=san)

        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        assert sim.now == 1.0
        heapq.heappush(sim._heap, (0.5, 10**9, sim.event()))
        with pytest.raises(SimulationError, match="regression"):
            sim.run()
        (report,) = san.by_kind(R.HEAP_REGRESSION)
        assert report.details["scheduled_for"] == 0.5
        assert report.time == 1.0

    def test_resource_release_without_acquire(self, san):
        sim = Simulator(sanitize=san)
        resource = Resource(sim, capacity=1, name="ctx")
        with pytest.raises(SimulationError, match="without acquire"):
            resource.release()
        (report,) = san.by_kind(R.RESOURCE_MISUSE)
        assert report.details["resource"] == "ctx"


class TestSanitizerMechanics:
    def test_report_cap_truncates(self):
        san = Sanitizer(strict=False, max_reports=2)
        for i in range(5):
            san.record(R.GATE_LEAK, f"leak {i}")
        assert len(san.reports) == 2
        assert san.truncated == 3
        assert "+3 truncated" in san.summary()

    def test_reports_survive_json_round_trip(self, san):
        region = ShmRegion(Simulator(sanitize=san), name="n0")
        region.put("a", make_payload(8), span=("f", 0, 8, 16))
        with pytest.raises(MPIError):
            region.put("b", make_payload(8), span=("f", 4, 12, 16))
        import json

        blob = json.loads(san.reports[0].to_json())
        assert blob["kind"] == R.SHM_OVERLAP
        assert blob["details"]["other_span"] == [0, 8]

    def test_begin_run_keeps_reports_but_clears_ledger(self, san):
        san.record(R.GATE_LEAK, "previous job")
        san._frames[("n0", "f")] = {"total": 4, "intervals": [(0, 4, "a")]}
        san._finalized = True
        san.begin_run()
        assert len(san.reports) == 1
        assert san._frames == {}
        assert not san._finalized

    def test_clean_sanitized_job_has_no_reports(self):
        def fn(comm):
            if comm.rank == 0:
                yield from comm.send(1, make_payload(4), tag=3)
            elif comm.rank == 1:
                yield from comm.recv(source=0, tag=3)
            else:
                yield comm.sim.timeout(1e-9)

        result = run_job(cluster_b(2), 4, fn, ppn=2, sanitize=True)
        assert result.reports == []
