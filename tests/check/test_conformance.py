"""Sanitized conformance suite: every allreduce, zero reports.

Property-based layer of the tier-1 suite: every registered allreduce
algorithm, run under ``sanitize=True`` across randomly drawn layouts,
element counts, reduction ops, and leader counts, must produce the
numpy reference answer with **zero** sanitizer reports.  The
deterministic parametrized layer below pins the full algorithm roster
on one canonical tricky layout so a regression names the algorithm in
the test id.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.sanitizer import Sanitizer
from repro.mpi.collectives.registry import available_algorithms
from repro.mpi.runtime import run_job
from repro.mpi.validate import _config_for
from repro.payload import MAX, SUM, DataPayload
from tests.conftest import ALL_LAYOUTS

#: Algorithms whose signature takes an explicit leader count.
LEADERED = ("dpml", "dpml_pipelined")


def _run_sanitized(algorithm, layout, count, op, leaders=None, seed=0):
    nranks, ppn, nodes = layout
    rng = np.random.default_rng(seed)
    inputs = [
        rng.integers(1, 9, count).astype(np.float64) for _ in range(nranks)
    ]
    kwargs = {"algorithm": algorithm}
    if leaders is not None:
        kwargs["leaders"] = leaders

    def fn(comm):
        out = yield from comm.allreduce(
            DataPayload(inputs[comm.rank].copy()), op, **kwargs
        )
        return out.array

    sanitizer = Sanitizer(strict=False)
    result = run_job(
        _config_for("allreduce", algorithm),
        nranks,
        fn,
        ppn=ppn,
        sanitize=sanitizer,
    )
    expected = op.reduce_stack(inputs)
    for rank, got in enumerate(result.values):
        np.testing.assert_array_equal(
            got, expected, err_msg=f"{algorithm} rank {rank}"
        )
    assert sanitizer.ok, sanitizer.summary()


class TestSanitizedConformance:
    @pytest.mark.parametrize("algorithm", available_algorithms())
    def test_every_algorithm_clean_on_tricky_layout(self, algorithm):
        _run_sanitized(algorithm, (9, 3, 3), 13, SUM)

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(
        algorithm=st.sampled_from(available_algorithms()),
        layout=st.sampled_from(ALL_LAYOUTS),
        count=st.integers(min_value=1, max_value=200),
        op=st.sampled_from([SUM, MAX]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_layouts_and_counts_clean(
        self, algorithm, layout, count, op, seed
    ):
        _run_sanitized(algorithm, layout, count, op, seed=seed)

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(
        algorithm=st.sampled_from(LEADERED),
        layout=st.sampled_from(ALL_LAYOUTS),
        count=st.integers(min_value=1, max_value=200),
        leaders=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_leader_counts_clean(
        self, algorithm, layout, count, leaders, seed
    ):
        # leaders beyond ppn are clamped by the leader plan; the spans
        # must still tile cleanly for every effective count.
        _run_sanitized(algorithm, layout, count, SUM, leaders=leaders, seed=seed)

    def test_validation_matrix_clean_under_sanitizer(self):
        # The allreduce slice of the full validation matrix, sanitized.
        from repro.mpi.validate import validate_all

        report = validate_all(
            kinds=["allreduce"], layouts=[(10, 4, 3)], counts=[13],
            sanitize=True,
        )
        assert report.ok, report.failed[:5]
