"""Every example script must run cleanly end to end.

The examples double as the library's acceptance tests — they exercise
the public API exactly the way a downstream user would.  The slowest
scripts are trimmed by environment knobs where they expose them, and
this module is safe to run in parallel with the rest of the suite.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p.name for p in (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)

# Expected stdout fragments proving each script did its real work.
EXPECTED_OUTPUT = {
    "quickstart.py": "speedup",
    "leader_sweep.py": "model-best",
    "sharp_offload.py": "host wins",
    "deep_learning_allreduce.py": "gradient averaging by",
    "hpcg_demo.py": "converged=True",
    "miniamr_demo.py": "refinement time",
    "custom_cluster.py": "best l=",
    "collectives_tour.py": "functional tour",
    "adaptive_selection.py": "locked on",
    "timeline_trace.py": "Chrome trace written",
}


def test_every_example_has_an_expectation():
    assert set(EXAMPLES) == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, tmp_path):
    args = [sys.executable, f"examples/{script}"]
    if script == "timeline_trace.py":
        args.append(str(tmp_path / "trace.json"))
    result = subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=600,
        cwd=pathlib.Path(__file__).parent.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_OUTPUT[script] in result.stdout
