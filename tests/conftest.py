"""Shared test fixtures: the canonical job-layout grid.

The (nranks, ppn, nodes) layout grid is single-sourced from
:mod:`repro.mpi.validate` (``DEFAULT_LAYOUTS`` / ``DEFAULT_COUNTS``) —
the same shapes the ``python -m repro.bench validate`` self-check and
the ``python -m repro.check`` sanitizer CLI sweep.  Tests import the
grids from here instead of re-declaring their own copies, so adding a
tricky layout to the validation matrix automatically widens every
suite that iterates layouts.
"""

import pytest

from repro.mpi.validate import DEFAULT_COUNTS, DEFAULT_LAYOUTS

#: Degenerate shapes the validation grid leaves out (tiny jobs, a
#: single rank) — valuable for collective-family and sanitizer edge
#: cases but pure overhead for the full validation matrix.
EXTRA_LAYOUTS: tuple = ((5, 2, 3), (2, 1, 2), (1, 1, 1))

#: The validation grid plus the degenerate extras.
ALL_LAYOUTS: tuple = tuple(DEFAULT_LAYOUTS) + EXTRA_LAYOUTS

#: Collective-family grid: the two canonical multi-node shapes plus
#: every degenerate extra.
FAMILY_LAYOUTS: tuple = tuple(DEFAULT_LAYOUTS[:2]) + EXTRA_LAYOUTS


def layout_id(layout) -> str:
    """Readable pytest id for a (nranks, ppn, nodes) triple."""
    nranks, ppn, nodes = layout
    return f"p{nranks}-ppn{ppn}-h{nodes}"


@pytest.fixture(params=DEFAULT_LAYOUTS, ids=layout_id)
def layout(request):
    """One (nranks, ppn, nodes) triple of the validation grid."""
    return request.param


@pytest.fixture(params=DEFAULT_COUNTS)
def count(request):
    """One element count of the validation grid."""
    return request.param
